"""Integration tests: whole-system scenarios spanning several subsystems.

These correspond to the paper's architecture figures: the proxy configuration
of Figure 3/4 (a chain of filters between two endpoints on a wireless path),
the FEC audio proxy of Figure 6, the RAPIDware configuration of Figure 2
(observers + responders reconfiguring a proxy), and the Pavilion session of
Figure 1.
"""



from repro.core import (
    CollectorSink,
    ControlThread,
    ControlManager,
    ControlServer,
    FilterSpec,
    IterableSource,
    Proxy,
)
from repro.filters import (
    FecDecoderFilter,
    FecEncoderFilter,
    PacketTapFilter,
    XorCipherFilter,
    ZlibCompressFilter,
    ZlibDecompressFilter,
)
from repro.media import AudioPacketizer, ToneSource, pcm_similarity
from repro.net import BernoulliLoss, WirelessLAN
from repro.pavilion import CollaborativeSession, build_demo_site
from repro.proxies import (
    DeviceDescriptor,
    WirelessAudioReceiver,
    run_fec_audio_experiment,
)
from repro.rapidware import run_adaptive_walk_experiment
from repro.net import LinearWalk


class TestFilterChainPipelines:
    """Figure 4: several filters composed on one stream."""

    def test_compress_cipher_pipeline_round_trips(self):
        payloads = [f"page fragment {i} ".encode() * 20 for i in range(40)]
        source = IterableSource(list(payloads), frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, auto_start=False)
        control.add(ZlibCompressFilter(name="compress"))
        control.add(XorCipherFilter(key=b"k1", name="encrypt"))
        control.add(XorCipherFilter(key=b"k1", name="decrypt"))
        control.add(ZlibDecompressFilter(name="decompress"))
        control.start()
        assert control.wait_for_completion(timeout=30.0)
        assert sink.items() == payloads
        control.shutdown()

    def test_fec_encode_decode_pipeline_inside_one_proxy(self):
        packets = AudioPacketizer(ToneSource(duration=1.0)).packet_list()
        source = IterableSource([p.pack() for p in packets], frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, auto_start=False)
        control.add(FecEncoderFilter(k=4, n=6, name="enc"))
        control.add(FecDecoderFilter(name="dec"))
        control.start()
        assert control.wait_for_completion(timeout=30.0)
        assert sink.items() == [p.pack() for p in packets]
        control.shutdown()

    def test_tap_observes_without_perturbing(self):
        packets = [f"payload-{i}".encode() for i in range(100)]
        seen = []
        source = IterableSource(list(packets), frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, auto_start=False)
        control.add(PacketTapFilter(callback=seen.append, name="tap"))
        control.start()
        assert control.wait_for_completion(timeout=30.0)
        assert sink.items() == packets
        assert seen == packets
        control.shutdown()


class TestRemoteManagementScenario:
    """ControlManager driving a remote proxy over TCP, as in Section 4."""

    def test_third_party_filter_uploaded_and_inserted_over_tcp(self):
        chunks = [f"record {i};".encode() for i in range(2000)]
        proxy = Proxy("managed")
        source = IterableSource(list(chunks), pacing_s=0.001)
        sink = CollectorSink()
        proxy.add_stream(source, sink, name="data")

        upload = '''
class RedactingFilter(Filter):
    """Third-party filter: masks digits before they cross the wireless hop."""

    type_name = "redactor"

    def transform(self, chunk):
        return bytes(ord("#") if 48 <= b <= 57 else b for b in chunk)
'''
        from repro.core import FilterRegistry

        with ControlServer(proxy, registry=FilterRegistry()) as server:
            manager = ControlManager()
            manager.register_proxy("edge", server.address)
            assert manager.ping_all() == {"edge": True}
            registered = manager.upload_filters("edge", "thirdparty", upload)
            assert registered == ["redactor"]
            manager.insert_filter("edge", FilterSpec("redactor", name="redact"),
                                  stream="data")
            rendering = manager.render_state()
            assert "redact" in rendering
            manager.close()

        control = proxy.stream("data")
        assert control.wait_for_completion(timeout=60.0)
        data = sink.data()
        proxy.shutdown()
        assert len(data) == len(b"".join(chunks))
        assert b"#" in data            # later records were redacted
        assert b"record 0;" in data    # early records passed through unmodified


class TestFecOverLossyWlan:
    """Figure 6 / Figure 7: the FEC audio proxy over the simulated WLAN."""

    def test_audio_quality_improves_with_fec(self):
        def run(fec_enabled):
            result = run_fec_audio_experiment(
                audio_source=ToneSource(duration=8.0),
                duration_s=8.0, receiver_count=1, fec_enabled=fec_enabled,
                loss_model_factory=lambda i: BernoulliLoss(0.08, seed=31 + i),
                seed=31)
            return next(iter(result.reports.values()))

        protected = run(True)
        unprotected = run(False)
        assert protected.reconstructed_percent > unprotected.reconstructed_percent
        assert protected.reconstructed_percent > 99.0

    def test_multiple_receivers_with_different_conditions(self):
        result = run_fec_audio_experiment(
            duration_s=6.0, receiver_count=3,
            loss_model_factory=lambda i: BernoulliLoss(0.02 * (i + 1), seed=i),
            seed=17)
        reports = list(result.reports.values())
        # Receivers with heavier loss receive less raw...
        raw = [r.received_percent for r in reports]
        assert raw[0] > raw[2]
        # ...but FEC keeps everyone's reconstructed rate high.
        assert all(r.reconstructed_percent > 98.0 for r in reports)

    def test_reconstructed_audio_is_byte_accurate_when_fec_suffices(self):
        audio = ToneSource(duration=2.0)
        packets = AudioPacketizer(audio).packet_list()
        wlan = WirelessLAN(seed=3)
        wlan.add_receiver("host", loss_model=BernoulliLoss(0.03, seed=9))
        from repro.proxies import FecAudioProxy

        proxy = FecAudioProxy(packets, wlan).start()
        assert proxy.wait_for_completion(timeout=60.0)
        proxy.shutdown()

        receiver = WirelessAudioReceiver("host")
        receiver.process(wlan.access_point.receiver("host").take())
        receiver.finish()
        report = receiver.delivery_report(len(packets))
        rebuilt = receiver.reconstructed_pcm(len(packets))
        similarity = pcm_similarity(audio.pcm_bytes(), rebuilt)
        # Every reconstructed packet is byte-identical; only unrecovered
        # packets (if any) degrade similarity.
        assert similarity >= report.reconstructed_percent / 100.0 - 0.01


class TestAdaptiveScenario:
    """Figure 2 / Section 3: observers and responders around a live proxy."""

    def test_walk_scenario_inserts_fec_exactly_when_needed(self):
        result = run_adaptive_walk_experiment(
            walk=LinearWalk(start_distance_m=5.0, end_distance_m=42.0,
                            duration_s=12.0), wlan_seed=41)
        activation = result.fec_activation_time()
        assert activation is not None and activation >= 1.0
        near_steps = [s for s in result.steps if s.distance_m < 12.0]
        assert not any(s.fec_active for s in near_steps)
        far_steps = [s for s in result.steps if s.distance_m > 35.0]
        assert any(s.fec_active for s in far_steps)


class TestCollaborativeScenario:
    """Figure 1: Pavilion collaborative browsing with a wireless participant."""

    def test_full_session_with_handoff_and_wireless_member(self):
        store = build_demo_site(page_count=6, images_per_page=1, seed=11)
        session = CollaborativeSession(store=store)
        try:
            session.join("leader-workstation")
            session.join("wired-laptop")
            session.join("palmtop", device=DeviceDescriptor.palmtop(),
                         wireless=True, distance_m=12.0)
            pages = [u for u in store.urls() if u.endswith(".html")][:3]
            session.browse("leader-workstation", pages[0])
            session.browse("leader-workstation", pages[1])
            session.request_floor("wired-laptop")
            session.grant_floor()
            session.browse("wired-laptop", pages[2])

            for member in ("wired-laptop", "palmtop"):
                received = session.participant(member).browser.pages()
                expected = [p for p in pages
                            if p not in session.participant(member).browser.announced_urls]
                # every member saw every page it did not itself announce
                assert [p for p in pages if p in received] == expected
            assert session.pages_browsed == 3
            assert session.leader == "wired-laptop"
        finally:
            session.shutdown()
