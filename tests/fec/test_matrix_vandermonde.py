"""Unit tests for GF(256) matrices and the Vandermonde code construction."""

import itertools

import pytest

from repro.fec import (
    GFMatrix,
    SingularMatrixError,
    decoding_matrix,
    parity_rows,
    systematic_generator_matrix,
    validate_parameters,
    vandermonde_matrix,
)
from repro.fec.matrix import solve


class TestGFMatrix:
    def test_identity_construction(self):
        eye = GFMatrix.identity(3)
        assert eye.rows() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert eye.is_identity()

    def test_shape_and_indexing(self):
        m = GFMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m[1, 2] == 6
        m[1, 2] = 9
        assert m[1, 2] == 9

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2], [3]])

    def test_out_of_range_elements_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix([[256]])
        m = GFMatrix([[0]])
        with pytest.raises(ValueError):
            m[0, 0] = -1

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix([])
        with pytest.raises(ValueError):
            GFMatrix([[]])

    def test_multiply_by_identity(self):
        m = GFMatrix([[7, 9], [13, 200]])
        assert m.multiply(GFMatrix.identity(2)) == m
        assert GFMatrix.identity(2).multiply(m) == m

    def test_multiply_shape_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2]]).multiply(GFMatrix([[1, 2]]))

    def test_inverse_round_trip(self):
        m = GFMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 10]])
        assert m.multiply(m.inverse()).is_identity()
        assert m.inverse().multiply(m).is_identity()

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix([[1, 2], [1, 2]]).inverse()

    def test_non_square_inverse_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2, 3], [4, 5, 6]]).inverse()

    def test_multiply_vector(self):
        eye = GFMatrix.identity(3)
        assert eye.multiply_vector([9, 8, 7]) == [9, 8, 7]

    def test_multiply_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix.identity(2).multiply_vector([1, 2, 3])

    def test_solve_linear_system(self):
        m = GFMatrix([[1, 2], [3, 4]])
        x = [17, 99]
        rhs = m.multiply_vector(x)
        assert solve(m, rhs) == x

    def test_submatrix_selects_rows(self):
        m = GFMatrix([[1, 1], [2, 2], [3, 3]])
        assert m.submatrix([2, 0]).rows() == [[3, 3], [1, 1]]


class TestParameterValidation:
    @pytest.mark.parametrize("k,n", [(0, 4), (-1, 2), (5, 4), (4, 256)])
    def test_invalid_parameters_rejected(self, k, n):
        with pytest.raises(ValueError):
            validate_parameters(k, n)

    @pytest.mark.parametrize("k,n", [(1, 1), (4, 6), (16, 24), (1, 255)])
    def test_valid_parameters_accepted(self, k, n):
        validate_parameters(k, n)


class TestVandermondeConstruction:
    def test_raw_matrix_shape(self):
        v = vandermonde_matrix(4, 6)
        assert v.shape == (6, 4)

    def test_first_column_all_ones(self):
        v = vandermonde_matrix(3, 7)
        assert all(v[i, 0] == 1 for i in range(7))

    def test_systematic_top_is_identity(self):
        for k, n in [(1, 3), (4, 6), (8, 12)]:
            g = systematic_generator_matrix(k, n)
            assert g.submatrix(range(k)).is_identity()

    def test_generator_shape(self):
        g = systematic_generator_matrix(4, 6)
        assert g.shape == (6, 4)

    def test_parity_rows_count(self):
        assert len(parity_rows(4, 6)) == 2
        assert len(parity_rows(5, 5)) == 0

    def test_every_k_subset_invertible_small_code(self):
        """The defining property: any k rows of G must be invertible."""
        k, n = 4, 6
        g = systematic_generator_matrix(k, n)
        for rows in itertools.combinations(range(n), k):
            g.submatrix(rows).inverse()  # must not raise

    def test_every_k_subset_invertible_wider_code(self):
        k, n = 3, 8
        g = systematic_generator_matrix(k, n)
        for rows in itertools.combinations(range(n), k):
            g.submatrix(rows).inverse()

    def test_generator_cached(self):
        # The construction is memoised internally, but callers receive
        # private copies so mutations cannot poison the cache.
        from repro.fec.vandermonde import _systematic_generator_matrix_cached

        cached = _systematic_generator_matrix_cached(4, 6)
        assert _systematic_generator_matrix_cached(4, 6) is cached
        public = systematic_generator_matrix(4, 6)
        assert public == cached
        assert public is not cached


class TestDecodingMatrix:
    def test_all_data_rows_gives_identity(self):
        d = decoding_matrix(4, 6, [0, 1, 2, 3])
        assert d.is_identity()

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError):
            decoding_matrix(4, 6, [0, 1, 2])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            decoding_matrix(4, 6, [0, 1, 2, 2])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            decoding_matrix(4, 6, [0, 1, 2, 6])

    def test_decoding_recovers_vector(self):
        k, n = 4, 6
        g = systematic_generator_matrix(k, n)
        source = [10, 20, 30, 40]
        encoded = g.multiply_vector(source)
        received_indices = [0, 2, 4, 5]  # lost packets 1 and 3
        d = decoding_matrix(k, n, received_indices)
        recovered = d.multiply_vector([encoded[i] for i in received_indices])
        assert recovered == source

    def test_returned_matrix_is_a_private_copy(self):
        # The result is memoised internally; mutating it must not poison
        # future decodes of the same erasure pattern.
        first = decoding_matrix(4, 6, [2, 3, 4, 5])
        first[0, 0] ^= 0xFF
        second = decoding_matrix(4, 6, [2, 3, 4, 5])
        assert first != second

    def test_generator_matrix_is_a_private_copy(self):
        first = systematic_generator_matrix(4, 6)
        first[5, 0] ^= 0xFF
        second = systematic_generator_matrix(4, 6)
        assert first != second
