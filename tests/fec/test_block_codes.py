"""Unit tests for the (n, k) block erasure encoder/decoder."""

import itertools

import pytest

from repro.fec import BlockErasureCode, FecCodingError, decode_blocks, encode_blocks


def make_blocks(k, size=32, seed=7):
    """Deterministic pseudo-random source blocks."""
    import random

    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(k)]


class TestEncoding:
    def test_systematic_prefix(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        assert len(encoded) == 6
        assert encoded[:4] == blocks

    def test_parity_blocks_same_length(self):
        code = BlockErasureCode(4, 6)
        encoded = code.encode(make_blocks(4, size=100))
        assert all(len(block) == 100 for block in encoded)

    def test_encode_parity_returns_only_parity(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        assert code.encode_parity(blocks) == code.encode(blocks)[4:]

    def test_wrong_block_count_raises(self):
        code = BlockErasureCode(4, 6)
        with pytest.raises(FecCodingError):
            code.encode(make_blocks(3))

    def test_mismatched_block_lengths_raise(self):
        code = BlockErasureCode(2, 4)
        with pytest.raises(FecCodingError):
            code.encode([b"short", b"much longer block"])

    def test_empty_blocks_rejected(self):
        code = BlockErasureCode(2, 3)
        with pytest.raises(FecCodingError):
            code.encode([b"", b""])

    def test_k_equals_n_produces_no_parity(self):
        code = BlockErasureCode(3, 3)
        blocks = make_blocks(3)
        assert code.encode(blocks) == blocks

    def test_properties(self):
        code = BlockErasureCode(4, 6)
        assert code.parity_count == 2
        assert code.overhead == pytest.approx(0.5)
        assert code.rate == pytest.approx(4 / 6)


class TestDecoding:
    def test_decode_with_no_loss(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        received = {i: encoded[i] for i in range(4)}
        assert code.decode(received) == blocks

    def test_decode_all_single_losses(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        for lost in range(4):
            received = {i: encoded[i] for i in range(6) if i != lost}
            assert code.decode(received) == blocks

    def test_decode_every_k_subset(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4, size=48)
        encoded = code.encode(blocks)
        for subset in itertools.combinations(range(6), 4):
            received = {i: encoded[i] for i in subset}
            assert code.decode(received) == blocks

    def test_decode_with_extra_blocks(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        received = {i: encoded[i] for i in range(6)}  # all 6
        assert code.decode(received) == blocks

    def test_too_few_blocks_raises(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        with pytest.raises(FecCodingError):
            code.decode({0: encoded[0], 5: encoded[5]})

    def test_invalid_index_raises(self):
        code = BlockErasureCode(2, 3)
        blocks = make_blocks(2)
        encoded = code.encode(blocks)
        with pytest.raises(FecCodingError):
            code.decode({0: encoded[0], 7: encoded[1]})

    def test_mismatched_received_lengths_raise(self):
        code = BlockErasureCode(2, 4)
        blocks = make_blocks(2)
        encoded = code.encode(blocks)
        with pytest.raises(FecCodingError):
            code.decode({0: encoded[0], 2: encoded[2][:-1]})

    def test_can_decode_predicate(self):
        code = BlockErasureCode(4, 6)
        assert code.can_decode([0, 1, 4, 5])
        assert not code.can_decode([0, 1, 4])
        assert not code.can_decode([0, 0, 1, 1])  # duplicates don't count

    def test_single_source_block_code(self):
        code = BlockErasureCode(1, 3)
        blocks = [b"only block"]
        encoded = code.encode(blocks)
        for i in range(3):
            assert code.decode({i: encoded[i]}) == blocks


class TestPaperConfiguration:
    """The paper's FEC(6,4) code: any single or double loss is repairable."""

    def test_fec_6_4_repairs_any_two_losses(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4, size=256)
        encoded = code.encode(blocks)
        for lost in itertools.combinations(range(6), 2):
            received = {i: encoded[i] for i in range(6) if i not in lost}
            assert code.decode(received) == blocks

    def test_fec_6_4_cannot_repair_three_losses(self):
        code = BlockErasureCode(4, 6)
        blocks = make_blocks(4)
        encoded = code.encode(blocks)
        received = {i: encoded[i] for i in range(3)}
        with pytest.raises(FecCodingError):
            code.decode(received)


class TestConvenienceFunctions:
    def test_encode_decode_helpers(self):
        blocks = make_blocks(3, size=16)
        encoded = encode_blocks(blocks, 3, 5)
        received = {0: encoded[0], 3: encoded[3], 4: encoded[4]}
        assert decode_blocks(received, 3, 5) == blocks
