"""Unit tests for the pluggable GF(256) backend registry and batch APIs."""

import random

import numpy as np
import pytest

from repro.fec import (
    BACKEND_ENV_VAR,
    BlockErasureCode,
    FecCodingError,
    FecGroupDecoder,
    FecGroupEncoder,
    GFBackendError,
    GFMatrix,
    NumpyGFBackend,
    PurePythonGFBackend,
    available_backends,
    get_backend,
    resolve_backend,
)


def random_matrix(rows, cols, seed=0):
    rng = random.Random(seed)
    return [[rng.randrange(256) for _ in range(cols)] for _ in range(rows)]


def random_batch(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"numpy", "python"} <= set(available_backends())

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_lookup_by_name(self):
        assert isinstance(get_backend("python"), PurePythonGFBackend)
        assert isinstance(get_backend("numpy"), NumpyGFBackend)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert get_backend().name == "python"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(GFBackendError):
            get_backend()

    def test_unknown_name_raises(self):
        with pytest.raises(GFBackendError):
            get_backend("no-such-backend")

    def test_resolve_accepts_instances_names_and_none(self):
        instance = PurePythonGFBackend()
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend(None).name in available_backends()
        with pytest.raises(GFBackendError):
            resolve_backend(42)

    def test_code_accepts_backend_argument(self):
        assert BlockErasureCode(2, 4, backend="python").backend.name == "python"
        assert BlockErasureCode(2, 4).backend.name == get_backend().name


class TestBackendAlgebra:
    @pytest.mark.parametrize("shape", [(1, 1, 1), (3, 4, 5), (8, 8, 8), (5, 2, 7)])
    def test_matmul_matches_reference(self, shape):
        m, k, n = shape
        a = random_matrix(m, k, seed=m * 100 + k)
        b = random_matrix(k, n, seed=n)
        assert NumpyGFBackend().matmul(a, b) == PurePythonGFBackend().matmul(a, b)

    def test_matvec_matches_reference(self):
        rows = random_matrix(6, 9, seed=3)
        vector = [random.Random(4).randrange(256) for _ in range(9)]
        assert NumpyGFBackend().matvec(rows, vector) == PurePythonGFBackend().matvec(
            rows, vector
        )

    @pytest.mark.parametrize("columns", [1, 2, 255, 256, 1000])
    def test_apply_matrix_matches_reference(self, columns):
        rows = random_matrix(4, 7, seed=columns)
        data = random_batch(7, columns, seed=columns)
        fast = NumpyGFBackend().apply_matrix(rows, data)
        slow = PurePythonGFBackend().apply_matrix(rows, data)
        assert fast.dtype == np.uint8
        assert np.array_equal(fast, slow)

    def test_apply_matrix_does_not_alias_inputs(self):
        backend = NumpyGFBackend()
        rows = [[1, 0], [0, 1]]  # identity: output values equal the input
        data = random_batch(2, 100, seed=9)
        result = backend.apply_matrix(rows, data)
        assert np.array_equal(result, data)
        result[0, 0] ^= 0xFF
        assert not np.array_equal(result, data)

    def test_apply_matrix_input_validation(self):
        backend = NumpyGFBackend()
        with pytest.raises(GFBackendError):
            backend.apply_matrix([], random_batch(2, 4))
        with pytest.raises(GFBackendError):
            backend.apply_matrix([[1, 2]], random_batch(3, 4))
        with pytest.raises(GFBackendError):
            backend.apply_matrix([[1, 2]], np.zeros((2, 4), dtype=np.uint16))
        with pytest.raises(GFBackendError):
            backend.apply_matrix([[1, 2]], np.zeros(4, dtype=np.uint8))

    def test_gfmatrix_multiply_uses_any_backend(self):
        a = GFMatrix(random_matrix(5, 5, seed=1))
        b = GFMatrix(random_matrix(5, 5, seed=2))
        assert a.multiply(b, backend="numpy") == a.multiply(b, backend="python")
        assert a.multiply(a.inverse()).is_identity()

    def test_gfmatrix_to_array_round_trip(self):
        rows = random_matrix(4, 3, seed=8)
        array = GFMatrix(rows).to_array()
        assert array.dtype == np.uint8
        assert array.tolist() == rows


class TestBatchCoding:
    @pytest.mark.parametrize("k,n", [(1, 1), (4, 6), (8, 12)])
    def test_encode_batch_matches_bytes_api(self, k, n):
        code = BlockErasureCode(k, n)
        batch = random_batch(k, 64, seed=n)
        blocks = [bytes(batch[i]) for i in range(k)]
        from_bytes = code.encode(blocks)
        from_batch = code.encode_batch(batch)
        assert from_batch.shape == (n, 64)
        assert [bytes(row) for row in from_batch] == from_bytes

    def test_decode_batch_recovers_sources(self):
        code = BlockErasureCode(4, 6)
        batch = random_batch(4, 32, seed=11)
        encoded = code.encode_batch(batch)
        survivors = [1, 3, 4, 5]  # two data blocks lost
        decoded = code.decode_batch(survivors, encoded[survivors])
        assert np.array_equal(decoded, batch)

    def test_decode_batch_accepts_unsorted_indices(self):
        code = BlockErasureCode(4, 6)
        batch = random_batch(4, 32, seed=12)
        encoded = code.encode_batch(batch)
        survivors = [5, 0, 4, 2]
        decoded = code.decode_batch(survivors, encoded[survivors])
        assert np.array_equal(decoded, batch)

    def test_encode_batch_validation(self):
        code = BlockErasureCode(2, 4)
        with pytest.raises(FecCodingError):
            code.encode_batch(random_batch(3, 8))
        with pytest.raises(FecCodingError):
            code.encode_batch(np.zeros((2, 0), dtype=np.uint8))
        with pytest.raises(FecCodingError):
            code.encode_batch(np.zeros((2, 8), dtype=np.int32))

    def test_decode_batch_validation(self):
        code = BlockErasureCode(2, 4)
        batch = random_batch(2, 8)
        with pytest.raises(FecCodingError):
            code.decode_batch([0], batch[:1])
        with pytest.raises(FecCodingError):
            code.decode_batch([0, 0], batch)
        with pytest.raises(FecCodingError):
            code.decode_batch([0, 9], batch)
        with pytest.raises(FecCodingError):
            code.decode_batch([0, 1], batch.astype(np.uint32))


class TestGroupBackendThreading:
    def test_group_round_trip_on_both_backends(self):
        for backend in ("numpy", "python"):
            encoder = FecGroupEncoder(k=4, n=6, backend=backend)
            decoder = FecGroupDecoder(backend=backend)
            assert encoder.backend_name == backend
            assert decoder.backend_name == backend
            payloads = [bytes([i]) * (10 + i) for i in range(4)]
            packets = []
            for payload in payloads:
                packets.extend(encoder.add(payload))
            # Drop two data packets; the group must still decode.
            delivered = []
            for packet in packets:
                if packet.index in (0, 2):
                    continue
                delivered.extend(decoder.add(packet))
            assert delivered == payloads

    def test_backends_produce_identical_packets(self):
        streams = {}
        for backend in ("numpy", "python"):
            encoder = FecGroupEncoder(k=4, n=6, backend=backend)
            packets = []
            for i in range(4):
                packets.extend(encoder.add(bytes([i * 17 % 256]) * 40))
            streams[backend] = [p.pack() for p in packets]
        assert streams["numpy"] == streams["python"]
