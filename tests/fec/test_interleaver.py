"""Unit tests for the packet interleaver/deinterleaver."""

import pytest

from repro.fec import (
    BlockInterleaver,
    Deinterleaver,
    FecGroupDecoder,
    FecGroupEncoder,
)
from repro.net import GilbertElliottLoss


def packets_for_groups(group_count, k=2, n=3):
    """Encode ``group_count`` groups and return the flat packet list."""
    encoder = FecGroupEncoder(k=k, n=n)
    packets = []
    for g in range(group_count):
        for i in range(k):
            packets.extend(encoder.add(f"g{g}p{i}".encode()))
    return packets


class TestBlockInterleaver:
    def test_emits_nothing_until_block_full(self):
        interleaver = BlockInterleaver(depth=2, row_length=3)
        packets = packets_for_groups(2)
        out = []
        for packet in packets[:-1]:
            out.extend(interleaver.add(packet))
        assert out == []
        out.extend(interleaver.add(packets[-1]))
        assert len(out) == 6

    def test_column_order_within_block(self):
        interleaver = BlockInterleaver(depth=2, row_length=3)
        packets = packets_for_groups(2)
        out = []
        for packet in packets:
            out.extend(interleaver.add(packet))
        # Row-major input [a0 a1 a2 | b0 b1 b2] -> column order a0 b0 a1 b1 a2 b2.
        expected_groups = [packets[0].group_id, packets[3].group_id] * 3
        assert [p.group_id for p in out] == expected_groups

    def test_flush_emits_partial_block(self):
        interleaver = BlockInterleaver(depth=3, row_length=3)
        packets = packets_for_groups(1)
        for packet in packets:
            assert interleaver.add(packet) == []
        assert interleaver.buffered == 3
        flushed = interleaver.flush()
        assert len(flushed) == 3
        assert interleaver.buffered == 0

    def test_counts_and_delay(self):
        interleaver = BlockInterleaver(depth=4, row_length=6)
        assert interleaver.added_delay_packets == 24
        for packet in packets_for_groups(8):
            interleaver.add(packet)
        interleaver.flush()
        assert interleaver.packets_in == interleaver.packets_out == 24

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BlockInterleaver(depth=0, row_length=3)
        with pytest.raises(ValueError):
            BlockInterleaver(depth=2, row_length=0)


class TestDeinterleaver:
    def test_round_trip_restores_group_order(self):
        packets = packets_for_groups(4)
        interleaver = BlockInterleaver(depth=4, row_length=3)
        on_the_wire = []
        for packet in packets:
            on_the_wire.extend(interleaver.add(packet))
        on_the_wire.extend(interleaver.flush())

        # A window at least as deep as the interleaver restores exact order.
        deinterleaver = Deinterleaver(window_groups=4)
        restored = []
        for packet in on_the_wire:
            restored.extend(deinterleaver.add(packet))
        restored.extend(deinterleaver.flush())
        assert [(p.group_id, p.index) for p in restored] == \
            [(p.group_id, p.index) for p in packets]

    def test_small_window_still_delivers_every_packet(self):
        packets = packets_for_groups(6)
        interleaver = BlockInterleaver(depth=3, row_length=3)
        on_the_wire = []
        for packet in packets:
            on_the_wire.extend(interleaver.add(packet))
        on_the_wire.extend(interleaver.flush())
        deinterleaver = Deinterleaver(window_groups=1)
        restored = []
        for packet in on_the_wire:
            restored.extend(deinterleaver.add(packet))
        restored.extend(deinterleaver.flush())
        assert sorted((p.group_id, p.index) for p in restored) == \
            sorted((p.group_id, p.index) for p in packets)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Deinterleaver(window_groups=0)


class TestInterleavingUnderBurstLoss:
    def test_interleaving_improves_burst_tolerance(self):
        """Under bursty (Gilbert–Elliott) loss, interleaved FEC recovers more
        payloads than non-interleaved FEC with the same code."""
        k, n, groups = 4, 6, 300

        def run(interleave: bool, seed: int = 99) -> int:
            encoder = FecGroupEncoder(k=k, n=n)
            decoder = FecGroupDecoder(max_tracked_groups=4096)
            channel = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.25,
                                         good_loss=0.0, bad_loss=0.9, seed=seed)
            interleaver = BlockInterleaver(depth=8, row_length=n)
            wire = []
            for g in range(groups):
                for i in range(k):
                    for packet in encoder.add(f"g{g}p{i}".encode()):
                        if interleave:
                            wire.extend(interleaver.add(packet))
                        else:
                            wire.append(packet)
            if interleave:
                wire.extend(interleaver.flush())
            delivered = 0
            for packet in wire:
                if channel.packet_lost():
                    continue
                delivered += len(decoder.add(packet))
            delivered += len(decoder.flush())
            return delivered

        plain = run(False)
        interleaved = run(True)
        total = groups * k
        assert interleaved > plain
        assert interleaved / total > 0.97
