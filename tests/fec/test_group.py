"""Unit tests for FEC group encoding/decoding and the packet wire format."""

import pytest

from repro.fec import (
    FLAG_UNCODED,
    FecGroupDecoder,
    FecGroupEncoder,
    FecPacket,
    FecPacketError,
    block_size_for,
    pad_block,
    unpad_block,
)


class TestPacketWireFormat:
    def test_pack_unpack_round_trip(self):
        packet = FecPacket(group_id=42, index=3, k=4, n=6, payload=b"payload", flags=0)
        assert FecPacket.unpack(packet.pack()) == packet

    def test_parity_flag_semantics(self):
        data = FecPacket(group_id=0, index=1, k=4, n=6, payload=b"d")
        parity = FecPacket(group_id=0, index=5, k=4, n=6, payload=b"p")
        uncoded = FecPacket(group_id=0, index=0, k=4, n=6, payload=b"u", flags=FLAG_UNCODED)
        assert data.is_data and not data.is_parity
        assert parity.is_parity and not parity.is_data
        assert uncoded.is_uncoded and not uncoded.is_data and not uncoded.is_parity

    def test_unpack_rejects_short_packet(self):
        with pytest.raises(FecPacketError):
            FecPacket.unpack(b"\xfe\x01")

    def test_unpack_rejects_bad_magic(self):
        packet = FecPacket(group_id=1, index=0, k=2, n=3, payload=b"x").pack()
        with pytest.raises(FecPacketError):
            FecPacket.unpack(b"\x00" + packet[1:])

    def test_pack_rejects_out_of_range_fields(self):
        with pytest.raises(FecPacketError):
            FecPacket(group_id=2 ** 40, index=0, k=2, n=3, payload=b"").pack()
        with pytest.raises(FecPacketError):
            FecPacket(group_id=0, index=300, k=2, n=3, payload=b"").pack()

    def test_pad_unpad_round_trip(self):
        block = pad_block(b"hello", 16)
        assert len(block) == 16
        assert unpad_block(block) == b"hello"

    def test_pad_rejects_too_small_block(self):
        with pytest.raises(FecPacketError):
            pad_block(b"too long for this", 4)

    def test_unpad_rejects_corrupt_length(self):
        with pytest.raises(FecPacketError):
            unpad_block(b"\xff\xff\x00")

    def test_block_size_for_group(self):
        assert block_size_for([b"ab", b"abcd", b"a"]) == 6
        with pytest.raises(FecPacketError):
            block_size_for([])


class TestGroupEncoder:
    def test_emits_nothing_until_group_full(self):
        encoder = FecGroupEncoder(k=4, n=6)
        assert encoder.add(b"p0") == []
        assert encoder.add(b"p1") == []
        assert encoder.add(b"p2") == []
        packets = encoder.add(b"p3")
        assert len(packets) == 6

    def test_group_packet_metadata(self):
        encoder = FecGroupEncoder(k=2, n=3)
        encoder.add(b"a")
        packets = encoder.add(b"b")
        assert [p.index for p in packets] == [0, 1, 2]
        assert all(p.group_id == 0 for p in packets)
        assert packets[2].is_parity
        more = encoder.add(b"c")
        assert more == []

    def test_group_ids_increment(self):
        encoder = FecGroupEncoder(k=1, n=2)
        first = encoder.add(b"x")
        second = encoder.add(b"y")
        assert first[0].group_id == 0
        assert second[0].group_id == 1

    def test_start_group_id_respected(self):
        encoder = FecGroupEncoder(k=1, n=1, start_group_id=100)
        assert encoder.add(b"x")[0].group_id == 100

    def test_variable_length_payloads_padded(self):
        encoder = FecGroupEncoder(k=2, n=4)
        encoder.add(b"short")
        packets = encoder.add(b"a much longer payload")
        lengths = {len(p.payload) for p in packets}
        assert len(lengths) == 1  # every block padded to the same size

    def test_flush_emits_uncoded_tail(self):
        encoder = FecGroupEncoder(k=4, n=6)
        encoder.add(b"tail-0")
        encoder.add(b"tail-1")
        tail = encoder.flush()
        assert len(tail) == 2
        assert all(p.is_uncoded for p in tail)
        assert [p.payload for p in tail] == [b"tail-0", b"tail-1"]

    def test_flush_when_empty_returns_nothing(self):
        encoder = FecGroupEncoder(k=4, n=6)
        assert encoder.flush() == []

    def test_stats(self):
        encoder = FecGroupEncoder(k=2, n=3)
        encoder.add(b"a")
        encoder.add(b"b")
        encoder.add(b"c")
        encoder.flush()
        assert encoder.stats.payloads_in == 3
        assert encoder.stats.groups_encoded == 1
        assert encoder.stats.data_packets_out == 2
        assert encoder.stats.parity_packets_out == 1
        assert encoder.stats.uncoded_packets_out == 1
        assert encoder.stats.packets_out == 4


class TestGroupDecoder:
    def encode_group(self, payloads, k=4, n=6):
        encoder = FecGroupEncoder(k=k, n=n)
        packets = []
        for payload in payloads:
            packets.extend(encoder.add(payload))
        return packets

    def test_lossless_delivery(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        out = []
        for packet in packets:
            out.extend(decoder.add(packet))
        assert out == payloads
        assert decoder.stats.groups_repaired == 0

    def test_recovers_single_data_loss(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        out = []
        for packet in packets:
            if packet.index == 1:
                continue  # lose one data packet
            out.extend(decoder.add(packet))
        assert out == payloads
        assert decoder.stats.groups_repaired == 1
        assert decoder.stats.payloads_recovered == 1

    def test_recovers_double_loss_with_two_parity(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        out = []
        for packet in packets:
            if packet.index in (0, 2):
                continue
            out.extend(decoder.add(packet))
        assert out == payloads

    def test_delivers_group_exactly_once(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        out = []
        for packet in packets:
            out.extend(decoder.add(packet))
        # every extra packet after the group decoded yields nothing more
        assert out == payloads

    def test_uncoded_packets_pass_through(self):
        decoder = FecGroupDecoder()
        packet = FecPacket(group_id=9, index=0, k=4, n=6,
                           payload=b"uncoded", flags=FLAG_UNCODED)
        assert decoder.add(packet) == [b"uncoded"]

    def test_unrecoverable_group_flush_returns_received_data(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        # Deliver only two data packets: below k, cannot decode.
        decoder.add(packets[0])
        decoder.add(packets[3])
        leftovers = decoder.flush()
        assert leftovers == [b"p0", b"p3"]
        assert decoder.stats.groups_unrecoverable == 1

    def test_flush_ignores_delivered_groups(self):
        payloads = [b"p0", b"p1", b"p2", b"p3"]
        packets = self.encode_group(payloads)
        decoder = FecGroupDecoder()
        for packet in packets:
            decoder.add(packet)
        assert decoder.flush() == []

    def test_interleaved_groups(self):
        encoder = FecGroupEncoder(k=2, n=3)
        group_a = encoder.add(b"a0") + encoder.add(b"a1")
        group_b = encoder.add(b"b0") + encoder.add(b"b1")
        decoder = FecGroupDecoder()
        out = []
        # interleave: a.data0, b.data0, a.parity, b.data1 -> both decode
        out.extend(decoder.add(group_a[0]))
        out.extend(decoder.add(group_b[0]))
        out.extend(decoder.add(group_a[2]))
        out.extend(decoder.add(group_b[1]))
        assert sorted(out) == [b"a0", b"a1", b"b0", b"b1"]

    def test_eviction_of_stale_groups(self):
        decoder = FecGroupDecoder(max_tracked_groups=2)
        encoder = FecGroupEncoder(k=2, n=2)
        for i in range(5):
            packets = encoder.add(f"g{i}-0".encode()) + encoder.add(f"g{i}-1".encode())
            decoder.add(packets[0])  # only one packet per group: never decodable
        assert decoder.pending_groups <= 2

    def test_inconsistent_group_parameters_raise(self):
        decoder = FecGroupDecoder()
        decoder.add(FecPacket(group_id=1, index=0, k=4, n=6, payload=pad_block(b"x", 4)))
        from repro.fec import FecCodingError
        with pytest.raises(FecCodingError):
            decoder.add(FecPacket(group_id=1, index=1, k=3, n=6, payload=pad_block(b"y", 4)))
