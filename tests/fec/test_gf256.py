"""Unit tests for GF(2^8) arithmetic."""

import numpy as np
import pytest

from repro.fec import (
    EXP_TABLE,
    FIELD_SIZE,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_dot_bytes,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_sub,
)


class TestTables:
    def test_exp_table_covers_field(self):
        # alpha^0 .. alpha^254 enumerate every nonzero element exactly once.
        assert sorted(EXP_TABLE[:FIELD_SIZE - 1]) == list(range(1, FIELD_SIZE))

    def test_log_exp_are_inverse(self):
        for value in range(1, FIELD_SIZE):
            assert EXP_TABLE[LOG_TABLE[value]] == value


class TestScalarArithmetic:
    def test_addition_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100
        assert gf_sub(0b1010, 0b0110) == 0b1100

    def test_addition_self_inverse(self):
        for a in range(256):
            assert gf_add(a, a) == 0

    def test_multiplication_by_zero_and_one(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0
            assert gf_mul(0, a) == 0
            assert gf_mul(a, 1) == a

    def test_multiplication_commutative(self):
        for a in (3, 17, 99, 200, 255):
            for b in (5, 80, 128, 254):
                assert gf_mul(a, b) == gf_mul(b, a)

    def test_multiplication_associative(self):
        for a, b, c in [(2, 3, 4), (7, 99, 200), (255, 254, 253)]:
            assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    def test_distributive_law(self):
        for a, b, c in [(5, 6, 7), (100, 200, 50), (255, 1, 128)]:
            assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    def test_division_inverts_multiplication(self):
        for a in (1, 2, 77, 255):
            for b in (1, 3, 100, 254):
                assert gf_div(gf_mul(a, b), b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_pow_matches_repeated_multiplication(self):
        for base in (2, 3, 29):
            acc = 1
            for exponent in range(10):
                assert gf_pow(base, exponent) == acc
                acc = gf_mul(acc, base)

    def test_pow_zero_exponent_is_one(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(123, 0) == 1

    def test_pow_of_zero_is_zero(self):
        assert gf_pow(0, 5) == 0


class TestVectorised:
    def test_mul_bytes_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        for coefficient in (0, 1, 2, 37, 255):
            vectorised = gf_mul_bytes(coefficient, data)
            scalar = np.array([gf_mul(coefficient, int(b)) for b in data], dtype=np.uint8)
            assert np.array_equal(vectorised, scalar)

    def test_mul_bytes_zero_coefficient(self):
        data = np.frombuffer(b"hello", dtype=np.uint8)
        assert not gf_mul_bytes(0, data).any()

    def test_mul_bytes_returns_copy_for_identity(self):
        data = np.frombuffer(b"abc", dtype=np.uint8)
        out = gf_mul_bytes(1, data)
        assert np.array_equal(out, data)
        assert out is not data

    def test_dot_bytes_matches_manual_combination(self):
        blocks = [np.frombuffer(b"\x01\x02\x03", dtype=np.uint8),
                  np.frombuffer(b"\x10\x20\x30", dtype=np.uint8)]
        coefficients = [3, 7]
        result = gf_dot_bytes(coefficients, blocks)
        expected = [gf_add(gf_mul(3, a), gf_mul(7, b))
                    for a, b in zip(b"\x01\x02\x03", b"\x10\x20\x30")]
        assert list(result) == expected

    def test_dot_bytes_length_mismatch_raises(self):
        blocks = [np.zeros(3, dtype=np.uint8)]
        with pytest.raises(ValueError):
            gf_dot_bytes([1, 2], blocks)

    def test_dot_bytes_empty_raises(self):
        with pytest.raises(ValueError):
            gf_dot_bytes([], [])
