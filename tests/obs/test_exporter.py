"""Exporter tests: exposition format, escaping, and the HTTP server."""

import json
import re
import urllib.request

import pytest

from repro.obs.exporter import (
    CONTENT_TYPE,
    MetricsServer,
    parse_metrics_addr,
    render,
)
from repro.obs.metrics import MetricsRegistry

#: Promtool-style line shapes for exposition format 0.0.4.
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?Inf|NaN|[+-]?[0-9.eE+-]+)$"
)


def validate_exposition(text):
    """Assert every line of a scrape matches the exposition grammar."""
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
        elif line.startswith("# TYPE"):
            assert _TYPE_RE.match(line), line
        else:
            assert _SAMPLE_RE.match(line), line


class TestRender:
    def test_plain_counter(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "a demo counter").inc(3)
        text = render(registry)
        assert "# HELP demo_total a demo counter" in text
        assert "# TYPE demo_total counter" in text
        assert "demo_total 3" in text
        validate_exposition(text)

    def test_labelled_samples_and_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", label_names=("path",))
        counter.labels(path='we"ird\\na\nme').inc()
        text = render(registry)
        assert 'path="we\\"ird\\\\na\\nme"' in text
        validate_exposition(text)

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("help_total", "line one\nline two")
        text = render(registry)
        assert "# HELP help_total line one\\nline two" in text
        validate_exposition(text)

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        text = render(registry)
        assert 'sizes_bucket{le="10"} 1' in text
        assert 'sizes_bucket{le="100"} 2' in text
        assert 'sizes_bucket{le="+Inf"} 2' in text
        assert "sizes_sum 55" in text
        assert "sizes_count 2" in text
        validate_exposition(text)

    def test_float_and_special_values(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("floaty")
        gauge.set(2.5)
        assert "floaty 2.5" in render(registry)
        gauge.set(float("inf"))
        assert "floaty +Inf" in render(registry)

    def test_empty_registry_renders_empty(self):
        assert render(MetricsRegistry()) == ""

    def test_default_registry_scrape_validates(self):
        from repro.core import CollectorSink, IterableSource, Proxy

        proxy = Proxy("exporter-validate-proxy")
        try:
            control = proxy.add_stream(
                IterableSource([b"data"], name="src"),
                CollectorSink(name="sink"),
                name="s",
            )
            control.wait_for_completion(timeout=10.0)
            validate_exposition(render())
        finally:
            proxy.shutdown()


class TestMetricsServer:
    @pytest.fixture
    def server(self):
        registry = MetricsRegistry()
        registry.counter("served_total", "served").inc(9)
        server = MetricsServer(registry=registry).start()
        yield server
        server.stop()

    def test_serves_metrics(self, server):
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert "served_total 9" in body
        validate_exposition(body)

    def test_serves_healthz(self, server):
        with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_start_is_idempotent(self, server):
        assert server.start() is server


class TestParseMetricsAddr:
    def test_host_and_port(self):
        assert parse_metrics_addr("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_port_only_forms(self):
        assert parse_metrics_addr(":9100") == ("127.0.0.1", 9100)
        assert parse_metrics_addr("9100") == ("127.0.0.1", 9100)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_metrics_addr("not-a-port")


class TestEnvActivation:
    def test_unset_env_is_noop(self, monkeypatch):
        from repro.obs import exporter

        monkeypatch.delenv(exporter.METRICS_ADDR_ENV_VAR, raising=False)
        assert exporter.ensure_default_server() is None

    def test_env_starts_server_once(self, monkeypatch):
        from repro.obs import exporter

        exporter.shutdown_default_server()
        monkeypatch.setenv(exporter.METRICS_ADDR_ENV_VAR, "127.0.0.1:0")
        try:
            first = exporter.ensure_default_server()
            assert first is not None
            assert exporter.ensure_default_server() is first
            assert exporter.default_server() is first
            with urllib.request.urlopen(
                f"{first.url}/healthz", timeout=5
            ) as response:
                assert response.status == 200
        finally:
            exporter.shutdown_default_server()
        assert exporter.default_server() is None
