"""Trace-replay tests: the measured-loss control loop, end to end.

The acceptance behaviour for the measured plane: when the replayed loss
rate rises, the adaptive FEC policy must *strengthen* (insert, then grow
the code's parity); when the link clears, it must *settle* (the code
weakens again).  Exercised on both real transports and both engines.
"""

import pytest

from repro.net.trace import EVENT_LOST, EVENT_SENT, PacketTrace
from repro.obs.replay import (
    LossSchedule,
    TraceReplaySession,
    replay_trace,
)


class TestLossSchedule:
    def test_rates_are_clamped(self):
        schedule = LossSchedule([-0.5, 0.5, 1.5])
        assert schedule.rates == [0.0, 0.5, 1.0]

    def test_rate_at(self):
        schedule = LossSchedule([0.1, 0.2], window_s=2.0)
        assert schedule.rate_at(0.0) == 0.1
        assert schedule.rate_at(1.9) == 0.1
        assert schedule.rate_at(2.0) == 0.2
        assert schedule.rate_at(99.0) == 0.0
        assert schedule.rate_at(-1.0) == 0.0

    def test_from_trace_buckets_by_window(self):
        trace = PacketTrace()
        for i in range(10):
            trace.record(EVENT_SENT, i, time_s=0.1 * i)
        for i in range(5):  # half of window 0 lost
            trace.record(EVENT_LOST, i, time_s=0.1 * i)
        for i in range(10, 20):
            trace.record(EVENT_SENT, i, time_s=1.0 + 0.05 * (i - 10))
        schedule = LossSchedule.from_trace(trace, window_s=1.0)
        assert len(schedule) == 2
        assert schedule.rates[0] == pytest.approx(0.5)
        assert schedule.rates[1] == 0.0

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            LossSchedule([0.1], window_s=0.0)


def run_replay(transport, engine=None):
    session = TraceReplaySession(transport=transport, engine=engine,
                                 observer_min_sample=10)
    try:
        schedule = LossSchedule([0.0, 0.3, 0.3, 0.3, 0.0, 0.0, 0.0, 0.0])
        result = session.run(schedule, packets_per_window=60)
        session.finish()
    finally:
        session.shutdown()
    return result


def assert_adapts_and_settles(result):
    # Clean leading window: no FEC yet.
    assert not result.steps[0].fec_active
    # The policy reacted to measured loss: FEC inserted during the lossy
    # phase, and the measured rate the responder acted on was nonzero.
    lossy = [s for s in result.steps if s.applied_loss_rate > 0]
    assert any(step.fec_active for step in lossy)
    assert result.insertions >= 1
    assert max(step.measured_loss_rate for step in lossy) > 0.0
    # Strength rose with loss: the strongest code carries real parity.
    strongest = result.max_code()
    assert strongest is not None
    k, n = strongest
    assert n > k
    # Settling: after the clean tail, either FEC is gone or the code has
    # weakened from its peak (smoothing keeps a weak code briefly).
    final = result.steps[-1]
    assert final.measured_loss_rate < max(
        step.measured_loss_rate for step in lossy
    )
    if final.fec_active:
        assert final.fec_code[1] - final.fec_code[0] < n - k
    else:
        assert result.removals >= 1


class TestReplayAdaptation:
    def test_loopback_fec_reacts_to_measured_loss(self):
        assert_adapts_and_settles(run_replay("loopback"))

    def test_udp_fec_reacts_to_measured_loss(self):
        assert_adapts_and_settles(run_replay("udp"))

    @pytest.mark.parametrize("engine_name", ["threaded", "event"])
    def test_both_engines_close_the_loop(self, engine_name):
        result = run_replay("loopback", engine=engine_name)
        assert result.insertions >= 1

    def test_clean_replay_never_inserts(self):
        session = TraceReplaySession(transport="loopback",
                                     observer_min_sample=10)
        try:
            result = session.run(LossSchedule([0.0, 0.0, 0.0]),
                                 packets_per_window=40)
            session.finish()
        finally:
            session.shutdown()
        assert result.insertions == 0
        assert not result.final_fec_active
        assert all(s.measured_loss_rate == 0.0 for s in result.steps)

    def test_drop_seed_reproduces_runs(self):
        def one_run():
            session = TraceReplaySession(transport="loopback", drop_seed=99,
                                         observer_min_sample=10)
            try:
                result = session.run(LossSchedule([0.0, 0.4, 0.4]),
                                     packets_per_window=50)
                session.finish()
            finally:
                session.shutdown()
            return [(s.packets_delivered, s.packets_dropped)
                    for s in result.steps]

        assert one_run() == one_run()

    def test_replay_trace_convenience(self):
        trace = PacketTrace()
        for i in range(30):
            trace.record(EVENT_SENT, i, time_s=0.03 * i)
        result = replay_trace(trace, window_s=1.0, packets_per_window=30)
        assert len(result.steps) == 1
        assert result.insertions == 0
