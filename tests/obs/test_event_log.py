"""Event-log tests: the JSONL ring, env selection, and control-plane events."""

import json

import pytest

from repro.obs import events
from repro.obs.events import (
    EVENT_SPLICE_INSERT,
    EVENT_SPLICE_REMOVE,
    EVENT_STREAM_START,
    EVENT_STREAM_STOP,
    EventLog,
    configure_event_log,
    get_event_log,
    new_correlation_id,
)


class TestEventLog:
    def test_emit_builds_schema(self):
        log = EventLog()
        record = log.emit("demo", stream="s1", cid="c-1", detail=42)
        assert record["event"] == "demo"
        assert record["stream"] == "s1"
        assert record["cid"] == "c-1"
        assert record["detail"] == 42
        assert isinstance(record["ts"], float)

    def test_ring_is_bounded(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("e", index=i)
        assert len(log) == 3
        assert [r["index"] for r in log.records()] == [7, 8, 9]

    def test_records_filters(self):
        log = EventLog()
        log.emit("a", cid="c-1")
        log.emit("b", cid="c-2")
        log.emit("a", cid="c-2")
        assert len(log.records(event="a")) == 2
        assert len(log.records(cid="c-2")) == 2
        assert len(log.records(event="a", cid="c-2")) == 1

    def test_file_tee_is_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        log.emit("one", stream="s", value=1)
        log.emit("two", stream="s", value=2)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == ["one", "two"]
        for record in parsed:
            assert set(record) >= {"ts", "event", "stream", "cid"}

    def test_rejects_stream_and_path_together(self, tmp_path):
        import io

        with pytest.raises(ValueError):
            EventLog(stream=io.StringIO(), path=str(tmp_path / "x"))

    def test_dead_sink_silences_tee_not_ring(self):
        import io

        sink = io.StringIO()
        log = EventLog(stream=sink)
        log.emit("before")
        sink.close()
        log.emit("after")  # must not raise
        assert [r["event"] for r in log.records()] == ["before", "after"]

    def test_correlation_ids_are_unique(self):
        ids = {new_correlation_id() for _ in range(100)}
        assert len(ids) == 100


class TestProcessLog:
    def test_env_selects_file(self, tmp_path, monkeypatch):
        path = tmp_path / "proc.jsonl"
        monkeypatch.setenv(events.EVENT_LOG_ENV_VAR, str(path))
        log = configure_event_log(None)  # rebuild from env
        try:
            log.emit("env-event")
            assert json.loads(path.read_text().splitlines()[-1])["event"] == (
                "env-event"
            )
        finally:
            monkeypatch.delenv(events.EVENT_LOG_ENV_VAR)
            configure_event_log(None)

    def test_get_event_log_is_process_wide(self):
        assert get_event_log() is get_event_log()


class TestControlPlaneEvents:
    def test_stream_lifecycle_and_splice_events(self):
        import queue

        from repro.core import CallableSource, CollectorSink, Proxy
        from repro.filters import PassthroughFilter

        log = get_event_log()
        log.clear()
        feed: "queue.Queue" = queue.Queue()
        for _ in range(5):
            feed.put(b"x" * 64)
        proxy = Proxy("event-log-proxy")
        try:
            control = proxy.add_stream(
                CallableSource(feed.get, name="src"),
                CollectorSink(name="sink"),
                name="evstream",
            )
            cid = control.correlation_id
            inserted = PassthroughFilter(name="tap")
            control.add(inserted)
            control.remove(inserted)
            feed.put(None)  # end of stream
            control.wait_for_completion(timeout=10.0)
        finally:
            proxy.shutdown()

        timeline = log.records(cid=cid)
        kinds = [record["event"] for record in timeline]
        assert kinds[0] == EVENT_STREAM_START
        assert EVENT_SPLICE_INSERT in kinds
        assert EVENT_SPLICE_REMOVE in kinds
        assert kinds[-1] == EVENT_STREAM_STOP
        for record in timeline:
            assert record["stream"] == "evstream"
        insert = next(r for r in timeline if r["event"] == EVENT_SPLICE_INSERT)
        assert insert["filter"] == "tap"

    def test_fec_policy_change_events(self):
        from repro.core import CollectorSink, IterableSource, Proxy
        from repro.rapidware import (
            EVENT_LOSS_RATE,
            AdaptationLimits,
            Event,
            EventBus,
            FecResponder,
        )

        log = get_event_log()
        log.clear()
        proxy = Proxy("event-log-fec-proxy")
        try:
            control = proxy.add_stream(
                IterableSource([b"x" * 64] * 5, name="src"),
                CollectorSink(name="sink"),
                name="fecstream",
                auto_start=False,
            )
            bus = EventBus()
            responder = FecResponder(
                control, bus, limits=AdaptationLimits(min_interval_s=0.0)
            )
            bus.publish(
                Event(
                    event_type=EVENT_LOSS_RATE,
                    source="test",
                    time_s=1.0,
                    data={"loss_rate": 0.2, "receiver": "r"},
                )
            )
            assert responder.fec_active
            bus.publish(
                Event(
                    event_type=EVENT_LOSS_RATE,
                    source="test",
                    time_s=2.0,
                    data={"loss_rate": 0.0, "receiver": "r"},
                )
            )
            assert not responder.fec_active
        finally:
            proxy.shutdown()

        changes = log.records(event="fec-policy-change")
        actions = [record["action"] for record in changes]
        assert "insert" in actions
        assert "remove" in actions
        insert = next(r for r in changes if r["action"] == "insert")
        assert insert["stream"] == "fecstream"
        assert insert["k"] > 0 and insert["n"] > insert["k"]
