"""Integration: /metrics totals must equal post-quiescence ChainSnapshot sums.

A live FEC-audio chain is run to quiescence under both execution engines;
the scrape served over HTTP must then agree *exactly* with the chain's own
``ChainSnapshot`` counters — the property that makes the exporter a
trustworthy window onto the data path.
"""

import re
import urllib.request

import pytest

from repro.core import CollectorSink, IterableSource, Proxy
from repro.filters import FecDecoderFilter, FecEncoderFilter
from repro.media import AudioPacketizer, ToneSource
from repro.obs.exporter import MetricsServer

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


def parse_samples(text):
    """exposition text -> {(name, frozenset(label items)): float}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = {}
        if match.group("labels"):
            for part in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"',
                                   match.group("labels")):
                labels[part[0]] = part[1]
        samples[(match.group("name"), frozenset(labels.items()))] = float(
            match.group("value")
        )
    return samples


def run_fec_audio_stream(engine_name, proxy_name):
    """Run a packetised tone through FEC encode/decode to quiescence."""
    packets = AudioPacketizer(ToneSource(duration=0.4),
                              packet_duration_ms=20).packet_list()
    proxy = Proxy(proxy_name, engine=engine_name)
    control = proxy.add_stream(
        IterableSource([p.pack() for p in packets], name="src",
                       frame_output=True),
        CollectorSink(name="sink"),
        name="audio",
        auto_start=False,
    )
    control.add(FecEncoderFilter(k=4, n=6, name="fec-enc"))
    control.add(FecDecoderFilter(name="fec-dec"), position=1)
    control.start()
    assert control.wait_for_completion(timeout=30.0)
    return proxy, control


@pytest.mark.parametrize("engine_name", ["threaded", "event"])
def test_scrape_matches_chain_snapshot(engine_name):
    proxy_name = f"integration-{engine_name}"
    proxy, control = run_fec_audio_stream(engine_name, proxy_name)
    server = MetricsServer().start()
    try:
        snap = control.snapshot()
        with urllib.request.urlopen(f"{server.url}/metrics",
                                    timeout=5) as response:
            samples = parse_samples(response.read().decode("utf-8"))

        elements = [("source", snap.source_stats)]
        elements += list(zip(snap.filter_names, snap.filter_stats))
        elements.append(("sink", snap.sink_stats))
        assert len(elements) == 4  # source, enc, dec, sink

        for element_name, stats in elements:
            for metric, in_key, out_key in (
                ("repro_stream_chunks_total", "chunks_in", "chunks_out"),
                ("repro_stream_bytes_total", "bytes_in", "bytes_out"),
            ):
                for direction, key in (("in", in_key), ("out", out_key)):
                    labels = frozenset({
                        "proxy": proxy_name,
                        "stream": "audio",
                        "element": element_name,
                        "direction": direction,
                    }.items())
                    assert samples[(metric, labels)] == stats[key], (
                        f"{metric} {element_name}/{direction} disagrees "
                        f"with the chain snapshot"
                    )

        # The FEC encoder demonstrably expanded the stream (parity bytes),
        # and that expansion is visible in the scrape itself.
        enc_labels = frozenset({
            "proxy": proxy_name, "stream": "audio",
            "element": "fec-enc", "direction": "out",
        }.items())
        enc_in_labels = frozenset({
            "proxy": proxy_name, "stream": "audio",
            "element": "fec-enc", "direction": "in",
        }.items())
        assert samples[("repro_stream_bytes_total", enc_labels)] > samples[
            ("repro_stream_bytes_total", enc_in_labels)
        ]

        # Stream-level gauges agree too.
        base = frozenset({"proxy": proxy_name, "stream": "audio"}.items())
        assert samples[("repro_stream_filters", base)] == 2
        assert samples[("repro_stream_running", base)] == (
            1.0 if snap.running else 0.0
        )
    finally:
        server.stop()
        proxy.shutdown()


def test_scrape_totals_stable_after_quiescence():
    """Two scrapes of a quiesced stream must be identical (no drift)."""
    proxy, control = run_fec_audio_stream("threaded", "integration-stable")
    server = MetricsServer().start()
    try:
        def scrape_stream_samples():
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=5) as response:
                samples = parse_samples(response.read().decode("utf-8"))
            return {
                key: value for key, value in samples.items()
                if key[0].startswith("repro_stream_")
                and ("proxy", "integration-stable") in key[1]
            }

        first = scrape_stream_samples()
        assert first
        assert scrape_stream_samples() == first
    finally:
        server.stop()
        proxy.shutdown()
