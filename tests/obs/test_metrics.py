"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    collect_channels,
    collect_engines,
    collect_proxies,
    default_registry,
    live_engines,
    live_proxies,
    register_engine,
)


class TestCounter:
    def test_increments_monotonically(self):
        counter = Counter("test_counter_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = Counter("test_counter_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_rejects_invalid_name(self):
        with pytest.raises(MetricsError):
            Counter("9starts_with_digit")
        with pytest.raises(MetricsError):
            Counter("has spaces")
        with pytest.raises(MetricsError):
            Counter("")

    def test_labelled_counter_requires_labels_call(self):
        counter = Counter("test_labelled_total", label_names=("stream",))
        with pytest.raises(MetricsError):
            counter.inc()
        counter.labels(stream="a").inc(3)
        counter.labels(stream="b").inc(1)
        family = counter.collect()
        values = {pairs: value for pairs, value in family.samples}
        assert values[(("stream", "a"),)] == 3
        assert values[(("stream", "b"),)] == 1

    def test_labels_rejects_wrong_label_set(self):
        counter = Counter("test_labelled_total", label_names=("stream",))
        with pytest.raises(MetricsError):
            counter.labels(other="x")

    def test_rejects_invalid_label_names(self):
        with pytest.raises(MetricsError):
            Counter("test_total", label_names=("9bad",))
        with pytest.raises(MetricsError):
            Counter("test_total", label_names=("__reserved",))
        with pytest.raises(MetricsError):
            Counter("test_total", label_names=("a", "a"))

    def test_labels_returns_same_child(self):
        counter = Counter("test_total", label_names=("k",))
        assert counter.labels(k="x") is counter.labels(k="x")

    def test_concurrent_label_children(self):
        counter = Counter("test_total", label_names=("k",))
        children = []

        def worker():
            for i in range(50):
                child = counter.labels(k=str(i % 5))
                child.inc()
                children.append(child)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        family = counter.collect()
        assert sum(value for _, value in family.samples) == 8 * 50
        assert len(family.samples) == 5


class TestGauge:
    def test_set_and_dec(self):
        gauge = Gauge("test_gauge")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8

    def test_scrape_time_function(self):
        gauge = Gauge("test_gauge")
        state = {"v": 7}
        gauge.set_function(lambda: state["v"])
        assert gauge.collect().samples == [((), 7.0)]
        state["v"] = 9
        assert gauge.collect().samples == [((), 9.0)]

    def test_broken_function_falls_back(self):
        gauge = Gauge("test_gauge")
        gauge.set(3)

        def boom():
            raise RuntimeError("dead callback")

        gauge.set_function(boom)
        assert gauge.collect().samples == [((), 3.0)]


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("test_hist", buckets=(10, 100))
        for value in (1, 5, 50, 500):
            histogram.observe(value)
        family = histogram.collect()
        rows = {pairs: value for pairs, value in family.samples}
        assert rows[(("__suffix__", "_bucket"), ("le", "10"))] == 2
        assert rows[(("__suffix__", "_bucket"), ("le", "100"))] == 3
        assert rows[(("__suffix__", "_bucket"), ("le", "+Inf"))] == 4
        assert rows[(("__suffix__", "_sum"),)] == 556
        assert rows[(("__suffix__", "_count"),)] == 4

    def test_rejects_bad_buckets(self):
        with pytest.raises(MetricsError):
            Histogram("test_hist", buckets=())
        with pytest.raises(MetricsError):
            Histogram("test_hist", buckets=(1, 1))


class TestRegistry:
    def test_get_or_create_is_first_wins(self):
        registry = MetricsRegistry()
        a = registry.counter("reg_total")
        b = registry.counter("reg_total")
        assert a is b

    def test_conflicting_type_raises(self):
        registry = MetricsRegistry()
        registry.counter("reg_total")
        with pytest.raises(MetricsError):
            registry.gauge("reg_total")

    def test_conflicting_labels_raise(self):
        registry = MetricsRegistry()
        registry.counter("reg_total", label_names=("a",))
        with pytest.raises(MetricsError):
            registry.counter("reg_total", label_names=("b",))

    def test_concurrent_registration_single_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            for _ in range(20):
                seen.append(registry.counter("concurrent_total"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(instrument) for instrument in seen}) == 1

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        names = [family.name for family in registry.collect()]
        assert names == sorted(names)

    def test_collector_merges_into_instrument_family(self):
        registry = MetricsRegistry()
        counter = registry.counter("merge_total")
        counter.inc(2)

        def collector():
            family = MetricFamily("merge_total", "counter")
            family.add(5, {"source": "fleet"})
            return [family]

        registry.register_collector(collector)
        families = {f.name: f for f in registry.collect()}
        assert len(families["merge_total"].samples) == 2

    def test_broken_collector_skipped(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc()

        def broken():
            raise RuntimeError("scrape-time failure")

        registry.register_collector(broken)
        names = [family.name for family in registry.collect()]
        assert names == ["ok_total"]

    def test_unregister_collector(self):
        registry = MetricsRegistry()

        def collector():
            return [MetricFamily("extra_total", "counter")]

        registry.register_collector(collector)
        registry.unregister_collector(collector)
        assert registry.collect() == []


class TestFleetCollectors:
    def test_proxy_registration_is_weak(self):
        from repro.core import Proxy

        proxy = Proxy("metrics-weak-proxy")
        assert any(p is proxy for p in live_proxies())
        proxy.shutdown()
        del proxy
        import gc

        gc.collect()
        assert not any(
            getattr(p, "name", "") == "metrics-weak-proxy" for p in live_proxies()
        )

    def test_engine_collector_reads_snapshot(self):
        class FakeEngine:
            name = "fake"

            def metrics_snapshot(self):
                return {"counters": {"rounds": 3}, "gauges": {"depth": 2}}

        engine = FakeEngine()
        register_engine(engine)
        families = {f.name: f for f in collect_engines()}
        rounds = families["repro_engine_rounds_total"]
        depth = families["repro_engine_depth"]
        assert any(value == 3 for _, value in rounds.samples)
        assert rounds.kind == "counter"
        assert any(value == 2 for _, value in depth.samples)
        assert depth.kind == "gauge"

    def test_engine_without_snapshot_is_skipped(self):
        class Bare:
            name = "bare"

        register_engine(Bare())
        collect_engines()  # must not raise

    def test_stream_collector_exports_directional_totals(self):
        from repro.core import CollectorSink, IterableSource, Proxy

        proxy = Proxy("metrics-collector-proxy")
        try:
            control = proxy.add_stream(
                IterableSource([b"ab", b"cdef"], name="src"),
                CollectorSink(name="sink"),
                name="s",
            )
            control.wait_for_completion(timeout=10.0)
            families = {f.name: f for f in collect_proxies()}
            rows = {
                pairs: value
                for pairs, value in families["repro_stream_bytes_total"].samples
            }
            key = (
                ("direction", "out"),
                ("element", "source"),
                ("proxy", "metrics-collector-proxy"),
                ("stream", "s"),
            )
            assert rows[key] == 6
        finally:
            proxy.shutdown()

    def test_channel_collector_reports_members(self):
        from repro.transport.loopback import LoopbackTransport

        transport = LoopbackTransport()
        channel = transport.open_channel("metrics-chan")
        receiver = channel.join("m1")
        channel.send(b"x" * 10)
        families = {f.name: f for f in collect_channels()}
        sent = {
            dict(pairs).get("channel"): value
            for pairs, value in families[
                "repro_transport_datagrams_sent_total"
            ].samples
        }
        assert sent.get("metrics-chan") == 1
        received = {
            dict(pairs).get("member"): value
            for pairs, value in families[
                "repro_transport_datagrams_received_total"
            ].samples
            if dict(pairs).get("channel") == "metrics-chan"
        }
        assert received.get("m1") == 1
        assert receiver.packets_received == 1
        transport.close()

    def test_default_registry_is_singleton_with_collectors(self):
        registry = default_registry()
        assert registry is default_registry()
        from repro.core import Proxy

        proxy = Proxy("metrics-default-proxy")
        try:
            names = [family.name for family in registry.collect()]
            assert "repro_proxy_streams" in names
        finally:
            proxy.shutdown()

    def test_engines_register_on_construction(self):
        from repro.runtime import EventEngine, ThreadedEngine

        threaded = ThreadedEngine()
        event = EventEngine()
        try:
            live = live_engines()
            assert any(e is threaded for e in live)
            assert any(e is event for e in live)
            snapshot = event.metrics_snapshot()
            assert set(snapshot) == {"counters", "gauges"}
            assert "scheduler_rounds" in snapshot["counters"]
            assert "dirty_depth" in snapshot["gauges"]
        finally:
            event.shutdown()
