"""LossEstimator and MeasuredLossObserver unit tests."""

import pytest

from repro.fec.packets import FLAG_PARITY, FecPacket
from repro.media import MediaPacket
from repro.obs.loss import LossEstimator, MeasuredLossObserver
from repro.rapidware import EVENT_LOSS_RATE, EventBus
from repro.rapidware.events import SEVERITY_CRITICAL, SEVERITY_INFO


def media_payload(sequence):
    return MediaPacket(
        sequence=sequence, timestamp_ms=sequence * 20, payload=b"a" * 32
    ).pack()


def fec_payload(group_id, index, k=4, n=6):
    flags = FLAG_PARITY if index >= k else 0
    return FecPacket(
        group_id=group_id, index=index, k=k, n=n, payload=b"b" * 32, flags=flags
    ).pack()


class TestSequenceSignal:
    def test_no_loss_on_contiguous_sequences(self):
        estimator = LossEstimator()
        for sequence in range(20):
            estimator.observe(media_payload(sequence))
        assert estimator.sequence_loss_rate() == 0.0
        assert estimator.loss_rate() == 0.0
        assert estimator.media_packets == 20

    def test_gaps_measure_loss(self):
        estimator = LossEstimator()
        for sequence in range(40):
            if sequence % 4 == 0:
                continue  # drop every 4th packet
            estimator.observe(media_payload(sequence))
        assert estimator.sequence_loss_rate() == pytest.approx(0.25, abs=0.05)

    def test_duplicates_do_not_inflate(self):
        estimator = LossEstimator()
        for _ in range(3):
            for sequence in range(10):
                estimator.observe(media_payload(sequence))
        assert estimator.sequence_loss_rate() == 0.0

    def test_window_slides(self):
        estimator = LossEstimator(window_sequences=16)
        estimator.observe(media_payload(0))  # ancient packet
        for sequence in range(1000, 1016):
            estimator.observe(media_payload(sequence))
        # The ancient packet has slid out: the window covers only the
        # contiguous tail, so no loss is reported.
        assert estimator.sequence_loss_rate() == 0.0

    def test_below_two_sequences_is_none(self):
        estimator = LossEstimator()
        assert estimator.sequence_loss_rate() is None
        estimator.observe(media_payload(0))
        assert estimator.sequence_loss_rate() is None


class TestFecGroupSignal:
    def test_complete_groups_measure_zero(self):
        estimator = LossEstimator(seal_margin=1)
        for group in range(5):
            for index in range(6):
                estimator.observe(fec_payload(group, index))
        assert estimator.groups_sealed >= 4
        assert estimator.fec_loss_rate() == 0.0

    def test_missing_indices_measure_loss(self):
        estimator = LossEstimator(seal_margin=1)
        for group in range(6):
            for index in range(6):
                if index < 3:  # half of each group lost
                    estimator.observe(fec_payload(group, index))
        rate = estimator.fec_loss_rate()
        assert rate == pytest.approx(0.5, abs=0.01)

    def test_fec_signal_preferred_over_sequence(self):
        estimator = LossEstimator(seal_margin=1)
        for sequence in range(10):
            estimator.observe(media_payload(sequence))
        for group in range(4):
            for index in range(6):
                if index != 0:
                    estimator.observe(fec_payload(group, index))
        assert estimator.loss_rate() == estimator.fec_loss_rate()
        assert estimator.loss_rate() > 0.0

    def test_unsealed_groups_report_none(self):
        estimator = LossEstimator(seal_margin=4)
        for index in range(6):
            estimator.observe(fec_payload(0, index))
        assert estimator.fec_loss_rate() is None


class TestClassification:
    def test_garbage_counts_unparsed(self):
        estimator = LossEstimator()
        estimator.observe(b"\x00\x01garbage")
        assert estimator.unparsed_packets == 1
        assert estimator.loss_rate() == 0.0

    def test_uncoded_fec_packet_reads_inner_media(self):
        from repro.fec.packets import FLAG_UNCODED

        estimator = LossEstimator()
        inner = media_payload(7)
        wrapped = FecPacket(
            group_id=0, index=0, k=4, n=6, payload=inner, flags=FLAG_UNCODED
        ).pack()
        estimator.observe(wrapped)
        assert estimator.media_packets == 1

    def test_attach_chains_on_receive(self):
        class FakeReceiver:
            on_receive = None

        received = []
        receiver = FakeReceiver()
        receiver.on_receive = received.append
        estimator = LossEstimator()
        estimator.attach(receiver)
        payload = media_payload(0)
        receiver.on_receive(payload)
        assert estimator.packets_observed == 1
        assert received == [payload]

    def test_snapshot_keys(self):
        estimator = LossEstimator()
        estimator.observe(media_payload(0))
        snapshot = estimator.snapshot()
        assert set(snapshot) >= {
            "packets_observed",
            "fec_packets",
            "media_packets",
            "unparsed_packets",
            "groups_sealed",
            "loss_rate",
        }


class TestMeasuredLossObserver:
    def test_gates_on_min_sample(self):
        estimator = LossEstimator()
        observer = MeasuredLossObserver(
            estimator, EventBus(), min_sample_packets=10
        )
        for sequence in range(5):
            estimator.observe(media_payload(sequence))
        assert observer.measure(1.0) == []
        for sequence in range(5, 12):
            estimator.observe(media_payload(sequence))
        published = observer.measure(2.0)
        assert len(published) == 1
        assert published[0].event_type == EVENT_LOSS_RATE
        assert published[0].value("measured") is True

    def test_severity_tracks_thresholds(self):
        estimator = LossEstimator()
        observer = MeasuredLossObserver(
            estimator,
            EventBus(),
            min_sample_packets=1,
            smoothing=1.0,
            critical_threshold=0.10,
        )
        for sequence in range(20):
            estimator.observe(media_payload(sequence))
        assert observer.measure(1.0)[0].severity == SEVERITY_INFO
        for sequence in range(100, 200):
            if sequence % 2 == 0:
                estimator.observe(media_payload(sequence))
        assert observer.measure(2.0)[0].severity == SEVERITY_CRITICAL

    def test_smoothing_damps_spikes(self):
        estimator = LossEstimator()
        observer = MeasuredLossObserver(
            estimator, EventBus(), min_sample_packets=1, smoothing=0.5
        )
        for sequence in range(0, 40, 2):  # 50% loss
            estimator.observe(media_payload(sequence))
        observer.measure(1.0)
        assert 0.0 < observer.last_loss_rate < observer.raw_loss_rate + 1e-9
        assert observer.last_loss_rate == pytest.approx(
            0.5 * observer.raw_loss_rate, abs=1e-9
        )

    def test_validates_parameters(self):
        estimator = LossEstimator()
        with pytest.raises(ValueError):
            MeasuredLossObserver(estimator, EventBus(), degraded_threshold=0.5,
                                 critical_threshold=0.1)
        with pytest.raises(ValueError):
            MeasuredLossObserver(estimator, EventBus(), smoothing=0.0)

    def test_estimator_windows_validate(self):
        with pytest.raises(ValueError):
            LossEstimator(window_groups=0)
        with pytest.raises(ValueError):
            LossEstimator(window_sequences=1)
        with pytest.raises(ValueError):
            LossEstimator(seal_margin=0)
