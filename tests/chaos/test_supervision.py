"""Stream supervision: error policies, restarts, bypass, stall watchdog."""

import queue

import pytest

from repro.core import CollectorSink, ErrorPolicy, IterableSource, Proxy
from repro.filters import FaultInjectionFilter
from repro.obs.events import (
    EVENT_FILTER_BYPASS,
    EVENT_FILTER_RESTART,
    EVENT_STREAM_ERROR,
    EVENT_STREAM_STALL,
    get_event_log,
)
from repro.obs.metrics import default_registry


@pytest.fixture(autouse=True)
def _clean_slate():
    FaultInjectionFilter.reset_crash_counts()
    get_event_log().clear()
    yield
    FaultInjectionFilter.reset_crash_counts()


def _restart_metric(stream):
    counter = default_registry().counter(
        "repro_stream_filter_restarts_total",
        "Filters restarted in place by stream supervision",
        label_names=("stream",))
    return counter.labels(stream=stream).value


CHUNKS = [b"%03d" % i + b"x" * 61 for i in range(10)]


def _run_stream(policy, crasher, stream_name, chunks=CHUNKS,
                pacing_s=0.02, timeout=15.0):
    """One supervised threaded stream through a fault-injection filter."""
    proxy = Proxy(f"{stream_name}-proxy", engine="threaded")
    try:
        source = IterableSource(chunks, name="src", pacing_s=pacing_s)
        sink = CollectorSink(name="sink")
        control = proxy.add_stream(source, sink, name=stream_name,
                                   auto_start=False, error_policy=policy)
        control.add(crasher)
        control.start()
        completed = control.wait_for_completion(timeout=timeout)
        return completed, sink
    finally:
        proxy.shutdown()


class TestErrorPolicy:
    def test_defaults(self):
        policy = ErrorPolicy()
        assert policy.mode == "fail"
        assert not policy.recoverable

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ErrorPolicy(mode="reboot-the-universe")

    def test_resolve_accepts_none_str_dict_policy(self):
        assert ErrorPolicy.resolve(None) is None
        assert ErrorPolicy.resolve("bypass").mode == "bypass"
        assert ErrorPolicy.resolve({"mode": "restart-filter",
                                    "max_restarts": 5}).max_restarts == 5
        policy = ErrorPolicy(mode="bypass")
        assert ErrorPolicy.resolve(policy) is policy
        with pytest.raises(ValueError):
            ErrorPolicy.resolve(42)

    def test_roundtrips_through_dict(self):
        policy = ErrorPolicy(mode="restart-filter", max_restarts=2,
                             stall_timeout_s=1.5)
        assert ErrorPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ErrorPolicy.from_dict({"mode": "fail", "retries": 3})


class TestFailPolicy:
    def test_crash_ends_stream_with_structured_error(self):
        crasher = FaultInjectionFilter(name="boom", crash_at_chunk=2)
        completed, sink = _run_stream("fail", crasher, "fail-stream")
        # The error path still propagates EOF, so the stream terminates...
        assert completed
        # ...with less than the full payload...
        assert len(sink.data()) < sum(len(c) for c in CHUNKS)
        # ...and a stream-error event explaining why.
        errors = get_event_log().records(event=EVENT_STREAM_ERROR)
        assert len(errors) == 1
        record = errors[0]
        assert record["stream"] == "fail-stream"
        assert record["filter"] == "boom"
        assert record["policy"] == "fail"
        assert "injected fault" in record["error"]

    def test_unsupervised_stream_has_no_watcher_and_no_events(self):
        crasher = FaultInjectionFilter(name="boom", crash_at_chunk=2)
        completed, _ = _run_stream(None, crasher, "bare-stream")
        assert completed
        assert get_event_log().records(event=EVENT_STREAM_ERROR) == []


class TestRestartPolicy:
    def test_crash_is_survived_and_recorded(self):
        before = _restart_metric("restart-stream")
        crasher = FaultInjectionFilter(name="boom", crash_at_chunk=3)
        completed, sink = _run_stream(
            ErrorPolicy(mode="restart-filter", backoff_s=0.01),
            crasher, "restart-stream")
        assert completed
        # The tail of the stream flowed through the replacement filter.
        assert CHUNKS[-1] in sink.items()
        restarts = get_event_log().records(event=EVENT_FILTER_RESTART)
        assert len(restarts) == 1
        record = restarts[0]
        assert record["stream"] == "restart-stream"
        assert record["filter"] == "boom"
        assert record["attempt"] == 1
        assert "injected fault" in record["error"]
        assert _restart_metric("restart-stream") == before + 1

    def test_correlation_id_ties_recovery_to_the_stream(self):
        crasher = FaultInjectionFilter(name="boom", crash_at_chunk=3)
        _run_stream(ErrorPolicy(mode="restart-filter", backoff_s=0.01),
                    crasher, "cid-stream")
        log = get_event_log()
        start = next(r for r in log.records(event="stream-start")
                     if r["stream"] == "cid-stream")
        restart = log.records(event=EVENT_FILTER_RESTART)[0]
        assert restart["cid"] == start["cid"]

    def test_budget_exhaustion_degrades_to_fail(self):
        from repro.core.registry import FilterSpec, default_registry as filters

        # Registry-built so every restarted replacement carries the same
        # crash args: it crashes on *its* first chunk, every generation,
        # and the two-restart budget runs out.
        crasher = filters().create(FilterSpec(
            type_name="fault-injection",
            args={"crash_at_chunk": 0, "max_crashes": 99},
            name="always"))
        completed, _ = _run_stream(
            ErrorPolicy(mode="restart-filter", max_restarts=2,
                        backoff_s=0.01),
            crasher, "exhaust-stream", pacing_s=0.05)
        assert completed  # EOF still reaches the sink; no wedged stream
        restarts = get_event_log().records(event=EVENT_FILTER_RESTART)
        assert len(restarts) == 2
        errors = get_event_log().records(event=EVENT_STREAM_ERROR)
        assert len(errors) == 1
        assert errors[0]["restarts_exhausted"] == 2

    def test_registry_built_filter_restarts_from_its_spec(self):
        from repro.core.registry import FilterSpec, default_registry as filters

        crasher = filters().create(FilterSpec(
            type_name="fault-injection",
            args={"crash_at_chunk": 3, "delay_per_chunk_s": 0.0},
            name="spec-boom"))
        completed, sink = _run_stream(
            ErrorPolicy(mode="restart-filter", backoff_s=0.01),
            crasher, "spec-stream")
        assert completed
        assert CHUNKS[-1] in sink.items()
        assert len(get_event_log().records(event=EVENT_FILTER_RESTART)) == 1


class TestBypassPolicy:
    def test_crashed_filter_is_spliced_out(self):
        crasher = FaultInjectionFilter(name="boom", crash_at_chunk=3)
        completed, sink = _run_stream("bypass", crasher, "bypass-stream")
        assert completed
        assert CHUNKS[-1] in sink.items()
        bypasses = get_event_log().records(event=EVENT_FILTER_BYPASS)
        assert len(bypasses) == 1
        record = bypasses[0]
        assert record["stream"] == "bypass-stream"
        assert record["filter"] == "boom"
        assert record["position"] == 0

    def test_healthy_filters_stay_in_the_chain(self):
        from repro.core.filter import Filter

        seen = []

        class Tap(Filter):
            def transform(self, chunk):
                seen.append(bytes(chunk))
                return chunk

        proxy = Proxy("bypass2-proxy", engine="threaded")
        try:
            source = IterableSource(CHUNKS, name="src", pacing_s=0.02)
            sink = CollectorSink(name="sink")
            control = proxy.add_stream(source, sink, name="bypass2",
                                       auto_start=False,
                                       error_policy="bypass")
            control.add(FaultInjectionFilter(name="boom", crash_at_chunk=3))
            control.add(Tap(name="tap"))
            control.start()
            assert control.wait_for_completion(timeout=15.0)
        finally:
            proxy.shutdown()
        # The tap (downstream of the bypassed crasher) saw the stream tail.
        assert CHUNKS[-1] in seen
        assert [f.name for f in control.filters] == ["tap"]


class TestStallWatchdog:
    def test_wedged_filter_is_detected_and_routed_around(self):
        # The filter sleeps far longer than the stall window on every
        # chunk; input queues behind it and its counters freeze.
        wedged = FaultInjectionFilter(name="wedge", delay_per_chunk_s=30.0)
        policy = ErrorPolicy(mode="bypass", stall_timeout_s=0.2,
                             poll_interval_s=0.05)
        # Paced input: the wedged filter grabs only the first chunk, the
        # rest queue behind it and survive the splice-around.
        completed, sink = _run_stream(policy, wedged, "stall-stream",
                                      pacing_s=0.05, timeout=20.0)
        assert completed
        assert CHUNKS[-1] in sink.items()
        stalls = get_event_log().records(event=EVENT_STREAM_STALL)
        assert len(stalls) == 1
        record = stalls[0]
        assert record["stream"] == "stall-stream"
        assert record["filter"] == "wedge"
        assert get_event_log().records(event=EVENT_FILTER_BYPASS)

    def test_fail_mode_reports_the_stall_but_does_not_recover(self):
        wedged = FaultInjectionFilter(name="wedge", delay_per_chunk_s=30.0)
        policy = ErrorPolicy(mode="fail", stall_timeout_s=0.3,
                             poll_interval_s=0.05)
        proxy = Proxy("stall-fail-proxy", engine="threaded")
        try:
            source = IterableSource(CHUNKS, name="src")
            sink = CollectorSink(name="sink")
            control = proxy.add_stream(source, sink, name="stall-fail",
                                       auto_start=False, error_policy=policy)
            control.add(wedged)
            control.start()
            deadline = queue.Queue()  # just a cheap waitable
            for _ in range(40):
                if get_event_log().records(event=EVENT_STREAM_STALL):
                    break
                try:
                    deadline.get(timeout=0.1)
                except queue.Empty:
                    pass
            stalls = get_event_log().records(event=EVENT_STREAM_STALL)
            assert len(stalls) == 1
            assert stalls[0]["policy"] == "fail"
            # No recovery action under fail mode.
            assert not get_event_log().records(event=EVENT_FILTER_BYPASS)
            assert not get_event_log().records(event=EVENT_FILTER_RESTART)
            assert [f.name for f in control.filters] == ["wedge"]
        finally:
            proxy.shutdown(timeout=1.0)
