"""ChaosTransport: registry wiring, fault application, events, determinism."""

import pytest

from repro.chaos import CHAOS_ENV_VAR, ChaosTransport, FaultPlan
from repro.obs.events import EVENT_CHAOS_FAULT, get_event_log
from repro.transport import get_transport


def _drain(receiver, timeout=2.0):
    captured = []
    while True:
        payload = receiver.recv(timeout=timeout)
        if payload is None:
            break
        captured.append(bytes(payload))
    return captured


def _send_all(channel, payloads):
    for payload in payloads:
        channel.send(payload)


class TestRegistryWiring:
    def test_chaos_prefix_wraps_named_transport(self):
        transport = get_transport("chaos:loopback")
        try:
            assert isinstance(transport, ChaosTransport)
            assert transport.name == "chaos:loopback"
        finally:
            transport.close()

    def test_chaos_prefix_defaults_inner_to_default_transport(self):
        transport = get_transport("chaos:")
        try:
            assert isinstance(transport, ChaosTransport)
            assert transport.name.startswith("chaos:")
        finally:
            transport.close()

    def test_env_auto_wraps_any_resolution(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=1,drop=0.5")
        transport = get_transport("loopback")
        try:
            assert isinstance(transport, ChaosTransport)
            assert transport.plan.drop_p == 0.5
        finally:
            transport.close()

    def test_env_does_not_double_wrap_chaos_names(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=1,drop=0.5")
        transport = get_transport("chaos:loopback")
        try:
            assert isinstance(transport, ChaosTransport)
            assert not isinstance(transport.inner, ChaosTransport)
        finally:
            transport.close()

    def test_inactive_plan_is_passthrough(self):
        transport = get_transport("chaos:loopback")
        try:
            channel = transport.open_channel("wlan")
            # No plan at all: the inner channel comes back unwrapped, so
            # the chaos layer cannot even add per-send overhead.
            assert type(channel).__name__ != "ChaosChannel"
            receiver = channel.join("r")
            channel.send(b"hello")
            channel.close()
            assert _drain(receiver) == [b"hello"]
        finally:
            transport.close()


class TestFaultApplication:
    def _run(self, plan, payloads, channel_name="wlan"):
        transport = ChaosTransport(get_transport("loopback"), plan)
        try:
            channel = transport.open_channel(channel_name)
            receiver = channel.join("r")
            _send_all(channel, payloads)
            channel.close()
            return _drain(receiver)
        finally:
            transport.close()

    def test_offset_drop(self):
        payloads = [bytes([i]) * 16 for i in range(6)]
        got = self._run(FaultPlan(seed=0, drop_offsets=(1, 4)), payloads)
        assert got == [payloads[0], payloads[2], payloads[3], payloads[5]]

    def test_offset_duplicate(self):
        payloads = [b"a", b"b", b"c"]
        got = self._run(FaultPlan(seed=0, duplicate_offsets=(1,)), payloads)
        assert got == [b"a", b"b", b"b", b"c"]

    def test_offset_reorder_swaps_and_close_flushes(self):
        payloads = [b"a", b"b", b"c"]
        got = self._run(FaultPlan(seed=0, reorder_offsets=(0,)), payloads)
        assert got == [b"b", b"a", b"c"]
        # Reordering the final datagram must not lose it: close() flushes.
        got = self._run(FaultPlan(seed=0, reorder_offsets=(2,)), payloads)
        assert got == [b"a", b"b", b"c"]

    def test_offset_corrupt(self):
        payloads = [bytes(range(16))] * 3
        got = self._run(FaultPlan(seed=0, corrupt_offsets=(2,)), payloads)
        assert len(got) == 3
        assert got[0] == payloads[0] and got[1] == payloads[1]
        diff = [i for i in range(16) if got[2][i] != payloads[2][i]]
        assert len(diff) == 1

    def test_seeded_runs_are_bit_reproducible(self):
        plan = FaultPlan(seed=99, drop_p=0.2, duplicate_p=0.1,
                         reorder_p=0.1, corrupt_p=0.1)
        payloads = [bytes([i]) * 32 for i in range(60)]
        first = self._run(plan, payloads)
        second = self._run(plan, payloads)
        assert first == second
        assert first != payloads  # the plan actually did something

    def test_fault_events_are_emitted(self):
        log = get_event_log()
        log.clear()
        self._run(FaultPlan(seed=0, drop_offsets=(1,)), [b"a", b"b", b"c"])
        faults = log.records(event=EVENT_CHAOS_FAULT)
        assert len(faults) == 1
        record = faults[0]
        assert record["action"] == "drop"
        assert record["offset"] == 1
        assert record["channel"] == "wlan"
        assert "drop_offsets" in record["plan"]

    def test_fault_counter_increments(self):
        from repro.obs.metrics import default_registry

        counter = default_registry().counter(
            "repro_chaos_faults_total",
            "Datagram faults injected by the chaos transport",
            label_names=("action",))
        before = counter.labels(action="duplicate").value
        self._run(FaultPlan(seed=0, duplicate_offsets=(0,)), [b"x"])
        assert counter.labels(action="duplicate").value == before + 1

    def test_unicast_repair_path_is_never_chaosd(self):
        # send_to carries FEC repair/unicast traffic; the fault plane only
        # applies to multicast send()s.
        plan = FaultPlan(seed=0, drop_p=1.0)
        transport = ChaosTransport(get_transport("loopback"), plan)
        try:
            channel = transport.open_channel("wlan")
            receiver = channel.join("r")
            channel.send_to("r", b"repair")
            channel.close()
            assert _drain(receiver) == [b"repair"]
        finally:
            transport.close()


class TestEquivalenceUnderInactiveChaos:
    """The full FEC round trip through an inactive chaos wrapper is
    byte-identical to the bare transport — the wrapper composes with the
    existing equivalence suite rather than forking it."""

    @pytest.mark.parametrize("inner", ["inproc", "loopback"])
    def test_round_trip_matches_bare_transport(self, inner):
        from repro.media import AudioPacketizer, ToneSource
        from repro.proxies import (
            FecAudioProxy,
            FecAudioProxyConfig,
            WirelessAudioReceiver,
        )

        packets = AudioPacketizer(ToneSource(duration=0.2),
                                  packet_duration_ms=20).packet_list()

        def run(transport_name):
            transport = get_transport(transport_name)
            try:
                channel = transport.open_channel("wlan")
                receiver = channel.join("mobile-host")
                config = FecAudioProxyConfig(fec_enabled=True,
                                             fec_start_group_id=0)
                proxy = FecAudioProxy(packets, channel=channel, config=config)
                proxy.start()
                assert proxy.wait_for_completion(timeout=30.0)
                proxy.shutdown()
                captured = _drain(receiver, timeout=10.0)
                audio = WirelessAudioReceiver("mobile-host")
                audio.process(captured)
                audio.finish()
                return captured, audio.reconstructed_pcm(len(packets))
            finally:
                transport.close()

        bare_wire, bare_pcm = run(inner)
        chaos_wire, chaos_pcm = run(f"chaos:{inner}")
        assert chaos_wire == bare_wire
        assert chaos_pcm == bare_pcm
