"""The chaos matrix: FEC round trips under seeded faults, everywhere.

The equivalence suite pins the *lossless* contract: same wire bytes, same
reconstructed audio on every transport × engine.  This matrix pins the
*lossy* one: with a seeded :class:`FaultPlan` decorating the channel, the
faulted wire stream is still identical on every transport × engine (the
injector is deterministic per seed and channel), and the receiver's FEC
recovers byte-identical audio whenever the losses stay inside the (n, k)
budget — here (6, 4): any 2 of each group's 6 datagrams are expendable.
Losses beyond the budget degrade the delivery report, never the stream.
"""

import pytest

from repro.chaos import ChaosTransport, FaultPlan
from repro.media import AudioPacketizer, ToneSource
from repro.proxies import FecAudioProxy, FecAudioProxyConfig, WirelessAudioReceiver
from repro.transport import get_transport

TRANSPORTS = ["inproc", "loopback", "udp"]
ENGINES = ["threaded", "event", "asyncio"]

#: One dropped datagram in group 0 (offsets 0-5) and one in group 1
#: (offsets 6-11): both inside FEC(6, 4)'s two-erasure budget.
COVERED_DROP = FaultPlan(seed=42, drop_offsets=(2, 9))

#: Duplicates and adjacent reorders never cost data at all.
DUP_REORDER = FaultPlan(seed=42, duplicate_offsets=(1, 7),
                        reorder_offsets=(4,))

#: Three losses inside group 0: beyond the (6, 4) budget, unrecoverable.
UNCOVERED_DROP = FaultPlan(seed=42, drop_offsets=(0, 1, 2))


def _audio_packets():
    source = ToneSource(duration=0.5)  # 25 packets of 20 ms
    return AudioPacketizer(source, packet_duration_ms=20).packet_list()


def _chaos_round_trip(transport_name, engine, plan, packets):
    """One FEC round trip over a fault-injected channel.

    Returns (wire payloads as seen by the receiver, reconstructed PCM,
    delivery report).
    """
    transport = ChaosTransport(get_transport(transport_name), plan)
    try:
        channel = transport.open_channel("wlan")
        receiver = channel.join("mobile-host")
        config = FecAudioProxyConfig(engine=engine, fec_enabled=True,
                                     fec_start_group_id=0)
        proxy = FecAudioProxy(packets, channel=channel, config=config)
        proxy.start()
        assert proxy.wait_for_completion(timeout=60.0), (transport_name, engine)
        proxy.shutdown()
        channel.close()  # flush any datagram the reorder fault still holds

        captured = []
        while True:
            payload = receiver.recv(timeout=10.0)
            if payload is None:
                break
            captured.append(bytes(payload))

        audio = WirelessAudioReceiver("mobile-host")
        audio.process(captured)
        audio.finish()
        pcm = audio.reconstructed_pcm(len(packets))
        report = audio.delivery_report(len(packets))
        return captured, pcm, report
    finally:
        transport.close()


@pytest.mark.parametrize("plan", [COVERED_DROP, DUP_REORDER],
                         ids=["covered-drop", "dup-reorder"])
def test_fec_recovers_and_faulted_wire_is_matrix_invariant(plan):
    packets = _audio_packets()
    reference = None
    reference_label = None
    for engine in ENGINES:
        for transport_name in TRANSPORTS:
            label = f"{transport_name}/{engine}"
            wire, pcm, report = _chaos_round_trip(
                transport_name, engine, plan, packets)
            # The losses stay inside the FEC budget: full reconstruction.
            assert report.reconstructed_percent == 100.0, label
            if reference is None:
                reference = (wire, pcm)
                reference_label = label
                continue
            # Same plan, same seed, same channel: the *faulted* wire and
            # the recovered audio are identical on every substrate.
            assert wire == reference[0], (label, reference_label)
            assert pcm == reference[1], (label, reference_label)
    assert reference[1] and any(b != 0 for b in reference[1])


def test_covered_loss_recovers_the_lossless_audio():
    packets = _audio_packets()
    _, lossless_pcm, _ = _chaos_round_trip("loopback", "threaded",
                                           FaultPlan(), packets)
    _, lossy_pcm, report = _chaos_round_trip("loopback", "threaded",
                                             COVERED_DROP, packets)
    assert report.reconstructed_percent == 100.0
    assert lossy_pcm == lossless_pcm


@pytest.mark.parametrize("transport_name", TRANSPORTS)
def test_uncovered_loss_degrades_without_breaking_the_stream(transport_name):
    packets = _audio_packets()
    wire, pcm, report = _chaos_round_trip(transport_name, "threaded",
                                          UNCOVERED_DROP, packets)
    # Three of group 0's six datagrams are gone: FEC(6, 4) cannot recover
    # all four data packets, but the stream still completes cleanly and
    # every other group arrives intact.
    assert report.reconstructed_percent < 100.0
    assert report.reconstructed_percent >= 80.0
    assert len(wire) > 0 and pcm is not None


def test_seeded_matrix_run_is_bit_reproducible():
    packets = _audio_packets()
    first = _chaos_round_trip("loopback", "event", COVERED_DROP, packets)
    second = _chaos_round_trip("loopback", "event", COVERED_DROP, packets)
    assert first[0] == second[0]
    assert first[1] == second[1]
