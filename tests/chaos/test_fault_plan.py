"""FaultPlan parsing, serialisation, and injector determinism."""

import pytest

from repro.chaos import DatagramFaultInjector, FaultPlan, FaultPlanError


class TestParsing:
    def test_empty_text_is_noop_plan(self):
        plan = FaultPlan.parse("")
        assert not plan.active
        assert plan == FaultPlan()

    def test_compact_syntax(self):
        plan = FaultPlan.parse("seed=42,drop=0.05,dup_at=3;9,delay=0.001")
        assert plan.seed == 42
        assert plan.drop_p == 0.05
        assert plan.duplicate_offsets == (3, 9)
        assert plan.delay_s == 0.001
        assert plan.active

    def test_compact_filter_hooks(self):
        plan = FaultPlan.parse("crash_at=5,slow=0.01")
        assert plan.crash_at_chunk == 5
        assert plan.filter_delay_s == 0.01
        # Filter hooks alone do not make the *datagram* plane active.
        assert not plan.active

    def test_json_syntax(self):
        plan = FaultPlan.parse('{"seed": 7, "drop_offsets": [2, 5], "corrupt_p": 0.1}')
        assert plan.seed == 7
        assert plan.drop_offsets == (2, 5)
        assert plan.corrupt_p == 0.1

    def test_offsets_are_sorted_and_deduped(self):
        plan = FaultPlan.parse("drop_at=9;2;9;2")
        assert plan.drop_offsets == (2, 9)

    @pytest.mark.parametrize("text", [
        "bogus_key=1",
        "drop",               # missing =
        "drop=not-a-number",
        '{"seed": 1, "unknown_field": 2}',
        '{"broken json',
    ])
    def test_malformed_text_raises(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_probability_range_is_validated(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_p=1.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=3,drop=0.25")
        plan = FaultPlan.from_env()
        assert plan.seed == 3 and plan.drop_p == 0.25
        monkeypatch.delenv("REPRO_CHAOS")
        assert not FaultPlan.from_env().active


class TestSerialisation:
    def test_roundtrip_through_dict(self):
        plan = FaultPlan(seed=11, drop_p=0.1, reorder_offsets=(4,),
                         stall_offset=0, stall_s=1.5, crash_at_chunk=0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan_serialises_empty(self):
        assert FaultPlan().to_dict() == {}
        assert FaultPlan().describe() == "no-op"

    def test_zero_offsets_survive_roundtrip(self):
        # 0 is a real offset, not a falsy "unset".
        plan = FaultPlan(stall_offset=0, stall_s=0.5, crash_at_chunk=0)
        payload = plan.to_dict()
        assert payload["stall_offset"] == 0
        assert payload["crash_at_chunk"] == 0

    def test_describe_mentions_faults(self):
        text = FaultPlan(seed=9, drop_p=0.2).describe()
        assert "drop_p=0.2" in text and "seed=9" in text


class TestInjectorDeterminism:
    def _faults(self, plan, key, payloads):
        injector = DatagramFaultInjector(plan, key)
        timeline = []
        for payload in payloads:
            sends, faults, delay = injector.process(payload)
            timeline.append((tuple(bytes(s) for s in sends), tuple(faults)))
        tail = injector.flush()
        if tail is not None:
            timeline.append(((bytes(tail),), ("flush",)))
        return timeline

    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=1234, drop_p=0.2, duplicate_p=0.2,
                         reorder_p=0.2, corrupt_p=0.2)
        payloads = [bytes([i]) * 32 for i in range(50)]
        first = self._faults(plan, "chan", payloads)
        second = self._faults(plan, "chan", payloads)
        assert first == second
        # Something actually fired at these probabilities over 50 datagrams.
        assert any(faults for _, faults in first)

    def test_different_seed_different_faults(self):
        payloads = [bytes([i]) * 32 for i in range(50)]
        a = self._faults(FaultPlan(seed=1, drop_p=0.3), "chan", payloads)
        b = self._faults(FaultPlan(seed=2, drop_p=0.3), "chan", payloads)
        assert a != b

    def test_channel_key_decorrelates_streams(self):
        payloads = [bytes([i]) * 32 for i in range(50)]
        plan = FaultPlan(seed=77, drop_p=0.3)
        assert (self._faults(plan, "wlan-a", payloads)
                != self._faults(plan, "wlan-b", payloads))

    def test_offset_faults_fire_exactly_once(self):
        plan = FaultPlan(seed=0, drop_offsets=(2,), duplicate_offsets=(4,))
        payloads = [bytes([i]) * 8 for i in range(6)]
        timeline = self._faults(plan, "c", payloads)
        sends = [s for s, _ in timeline]
        assert sends[2] == ()                      # dropped
        assert sends[4] == (payloads[4], payloads[4])  # duplicated
        for index in (0, 1, 3, 5):
            assert sends[index] == (payloads[index],)

    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan(seed=0, corrupt_offsets=(1,))
        injector = DatagramFaultInjector(plan, "c")
        clean = bytes(range(16))
        injector.process(clean)
        sends, faults, _ = injector.process(clean)
        corrupted = bytes(sends[0])
        assert ("corrupt", 1) in faults
        diff = [i for i in range(16) if corrupted[i] != clean[i]]
        assert len(diff) == 1
        assert corrupted[diff[0]] == clean[diff[0]] ^ 0xFF

    def test_reorder_swaps_adjacent(self):
        plan = FaultPlan(seed=0, reorder_offsets=(1,))
        injector = DatagramFaultInjector(plan, "c")
        outputs = []
        for payload in [b"a", b"b", b"c"]:
            sends, _, _ = injector.process(payload)
            outputs.extend(bytes(s) for s in sends)
        tail = injector.flush()
        if tail is not None:
            outputs.append(bytes(tail))
        assert outputs == [b"a", b"c", b"b"]

    def test_reorder_at_end_of_stream_flushes(self):
        plan = FaultPlan(seed=0, reorder_offsets=(1,))
        injector = DatagramFaultInjector(plan, "c")
        outputs = []
        for payload in [b"a", b"b"]:
            sends, _, _ = injector.process(payload)
            outputs.extend(bytes(s) for s in sends)
        tail = injector.flush()
        assert tail is not None
        outputs.append(bytes(tail))
        assert outputs == [b"a", b"b"]  # nothing lost, just delayed
