"""Identity pins for the zero-copy data path.

These tests assert *object identity*, not just byte equality: the aligned
read path must hand back the very object the writer queued, and a split
must produce O(1) ``memoryview`` pieces over the writer's original object
rather than intermediate ``bytes`` copies.  They exist so a refactor that
quietly reintroduces per-chunk copies fails loudly instead of only showing
up as a benchmark regression.

The ownership contract being pinned is documented in
``docs/ARCHITECTURE.md``: writers hand over the object and must not mutate
it afterwards; readers receive the writer's object or a read-only-by-
convention view of it.
"""

from repro.streams import StreamBuffer, make_pipe


class TestAlignedReadIdentity:
    def test_read_returns_the_writers_bytes_object(self):
        buffer = StreamBuffer(capacity=None)
        data = b"x" * 1000
        buffer.write(data)
        assert buffer.read(1000) is data

    def test_read_larger_than_sole_chunk_returns_the_object(self):
        buffer = StreamBuffer(capacity=None)
        data = b"y" * 100
        buffer.write(data)
        assert buffer.read(4096) is data

    def test_bytearray_and_memoryview_round_trip_by_reference(self):
        buffer = StreamBuffer(capacity=None)
        array = bytearray(b"z" * 64)
        view = memoryview(b"w" * 64)
        buffer.write(array)
        buffer.write(view)
        assert buffer.read(64) is array
        assert buffer.read(64) is view

    def test_pipe_read_returns_the_writers_object(self):
        dos, dis = make_pipe(capacity=None)
        data = b"p" * 512
        dos.write(data)
        assert dis.read(512) is data
        dos.close()


class TestSplitReadIdentity:
    def test_misaligned_read_pieces_are_views_over_the_original(self):
        buffer = StreamBuffer(capacity=None)
        data = b"0123456789" * 10
        buffer.write(data)
        first = buffer.read(40)
        second = buffer.read(60)
        assert bytes(first) == data[:40]
        assert bytes(second) == data[40:]
        # Both pieces are O(1) views whose backing object is the writer's
        # original — no intermediate bytes were materialised by the split.
        assert isinstance(first, memoryview) and first.obj is data
        assert isinstance(second, memoryview) and second.obj is data

    def test_repeated_carving_never_leaves_the_original_object(self):
        buffer = StreamBuffer(capacity=None)
        data = b"abcdefgh" * 128  # 1024 bytes
        buffer.write(data)
        pieces = [buffer.read(100) for _ in range(11)]
        assert b"".join(bytes(p) for p in pieces) == data
        for piece in pieces:
            assert isinstance(piece, memoryview)
            assert piece.obj is data

    def test_read_chunks_split_head_is_a_view(self):
        buffer = StreamBuffer(capacity=None)
        data = b"q" * 1000
        buffer.write(data)
        [piece] = buffer.read_chunks(max_bytes=300)
        assert isinstance(piece, memoryview) and piece.obj is data
        rest = buffer.read_chunks(max_bytes=1000)
        assert sum(len(p) for p in rest) == 700
        assert all(p.obj is data for p in rest)

    def test_peek_does_not_consume_or_disturb_identity(self):
        buffer = StreamBuffer(capacity=None)
        data = b"peekable" * 8
        buffer.write(data)
        assert buffer.peek(8) == data[:8]
        assert buffer.read(len(data)) is data


class TestBatchIdentity:
    def test_write_chunks_read_chunks_round_trips_the_same_objects(self):
        buffer = StreamBuffer(capacity=None)
        chunks = [bytes([i]) * (i + 1) for i in range(20)]
        buffer.write_chunks(chunks)
        out = buffer.read_chunks(max_bytes=sum(len(c) for c in chunks))
        assert len(out) == len(chunks)
        for popped, written in zip(out, chunks):
            assert popped is written

    def test_pipe_write_many_preserves_chunk_identity(self):
        dos, dis = make_pipe(capacity=None)
        chunks = [b"a" * 33, bytearray(b"b" * 7), memoryview(b"c" * 21)]
        dos.write_many(chunks)
        out = dis.read_chunks(max_bytes=1024)
        assert [id(c) for c in out] == [id(c) for c in chunks]
        dos.close()

    def test_empty_chunks_in_a_batch_never_surface_as_eof(self):
        buffer = StreamBuffer(capacity=None)
        buffer.write_chunks([b"", b"head", b"", b"tail", b""])
        out = buffer.read_chunks(max_bytes=1024)
        assert out == [b"head", b"tail"]
        buffer.close_for_writing()
        assert buffer.read_chunks(max_bytes=1024) == []

    def test_bounded_batch_waits_then_lands_whole(self):
        buffer = StreamBuffer(capacity=64)
        blocker = b"x" * 64
        buffer.write(blocker)
        import threading

        chunks = [b"1" * 16, b"2" * 16]
        done = threading.Event()

        def writer():
            buffer.write_chunks(chunks, timeout=5.0)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            assert buffer.read(64) is blocker
            assert done.wait(5.0)
            out = buffer.read_chunks(max_bytes=64)
            assert out[0] is chunks[0] and out[1] is chunks[1]
        finally:
            thread.join(5.0)

    def test_filter_pump_does_not_refragment_large_chunks(self):
        # A chain hop reads whole queued chunks: a large upstream chunk
        # must cross the hop as one unit (the E6 64 KiB regression was
        # exactly this being re-split into chunk_size pieces per hop).
        from repro.core import CollectorSink, ControlThread, IterableSource
        from repro.filters import PassthroughFilter

        big = bytes(range(256)) * 1024  # 256 KiB, a single source item
        sink = CollectorSink(name="sink")
        control = ControlThread(IterableSource([big], name="src"), sink,
                                auto_start=False)
        for i in range(2):
            control.add(PassthroughFilter(name=f"f{i}"))
        control.start()
        try:
            assert control.wait_for_completion(timeout=30.0)
            assert bytes(sink.data()) == big
        finally:
            control.shutdown()
