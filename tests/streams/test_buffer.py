"""Unit tests for the bounded StreamBuffer."""

import threading
import time

import pytest

from repro.streams import StreamBuffer, StreamClosedError, StreamTimeoutError
from repro.streams.exceptions import BrokenStreamError


class TestBasicReadWrite:
    def test_write_then_read_round_trips(self):
        buf = StreamBuffer()
        buf.write(b"hello world")
        assert buf.read(11) == b"hello world"

    def test_read_respects_max_bytes(self):
        buf = StreamBuffer()
        buf.write(b"abcdef")
        assert buf.read(2) == b"ab"
        assert buf.read(2) == b"cd"
        assert buf.read(10) == b"ef"

    def test_available_tracks_buffered_bytes(self):
        buf = StreamBuffer()
        assert buf.available() == 0
        buf.write(b"abcd")
        assert buf.available() == 4
        buf.read(1)
        assert buf.available() == 3

    def test_write_empty_bytes_is_noop(self):
        buf = StreamBuffer()
        assert buf.write(b"") == 0
        assert buf.available() == 0

    def test_read_zero_bytes_returns_empty(self):
        buf = StreamBuffer()
        buf.write(b"abc")
        assert buf.read(0) == b""
        assert buf.available() == 3

    def test_peek_does_not_consume(self):
        buf = StreamBuffer()
        buf.write(b"abcdef")
        assert buf.peek(3) == b"abc"
        assert buf.available() == 6
        assert buf.read(6) == b"abcdef"

    def test_read_exactly_collects_across_writes(self):
        buf = StreamBuffer()
        buf.write(b"ab")
        buf.write(b"cd")
        assert buf.read_exactly(4) == b"abcd"

    def test_counters_track_totals(self):
        buf = StreamBuffer()
        buf.write(b"abc")
        buf.read(2)
        assert buf.bytes_written == 3
        assert buf.bytes_read == 2


class TestBlockingBehaviour:
    def test_read_times_out_when_empty(self):
        buf = StreamBuffer()
        with pytest.raises(StreamTimeoutError):
            buf.read(10, timeout=0.05)

    def test_write_times_out_when_full(self):
        buf = StreamBuffer(capacity=4)
        buf.write(b"abcd")
        with pytest.raises(StreamTimeoutError):
            buf.write(b"e", timeout=0.05)

    def test_blocked_reader_wakes_on_write(self):
        buf = StreamBuffer()
        result = []

        def reader():
            result.append(buf.read(10, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        buf.write(b"ping")
        thread.join(timeout=2.0)
        assert result == [b"ping"]

    def test_blocked_writer_wakes_on_read(self):
        buf = StreamBuffer(capacity=4)
        buf.write(b"abcd")
        done = threading.Event()

        def writer():
            buf.write(b"efgh", timeout=2.0)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert buf.read(4) == b"abcd"
        assert done.wait(timeout=2.0)
        thread.join(timeout=2.0)
        assert buf.read(4) == b"efgh"

    def test_capacity_enforced_for_large_writes(self):
        buf = StreamBuffer(capacity=8)
        collected = []

        def reader():
            while True:
                chunk = buf.read(4, timeout=2.0)
                if not chunk:
                    return
                collected.append(chunk)

        thread = threading.Thread(target=reader)
        thread.start()
        buf.write(b"x" * 100, timeout=2.0)
        buf.close_for_writing()
        thread.join(timeout=2.0)
        assert b"".join(collected) == b"x" * 100


class TestEndOfStream:
    def test_read_returns_empty_after_close_and_drain(self):
        buf = StreamBuffer()
        buf.write(b"tail")
        buf.close_for_writing()
        assert buf.read(10) == b"tail"
        assert buf.read(10) == b""
        assert buf.at_eof()

    def test_write_after_close_raises(self):
        buf = StreamBuffer()
        buf.close_for_writing()
        with pytest.raises(StreamClosedError):
            buf.write(b"nope")

    def test_close_wakes_blocked_reader(self):
        buf = StreamBuffer()
        result = []

        def reader():
            result.append(buf.read(10, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        buf.close_for_writing()
        thread.join(timeout=2.0)
        assert result == [b""]

    def test_mark_broken_raises_for_writers(self):
        buf = StreamBuffer()
        buf.mark_broken()
        with pytest.raises(BrokenStreamError):
            buf.write(b"data")


class TestDrainWait:
    def test_wait_until_empty_immediate_when_empty(self):
        buf = StreamBuffer()
        assert buf.wait_until_empty(timeout=0.1)

    def test_wait_until_empty_times_out_with_data(self):
        buf = StreamBuffer()
        buf.write(b"stuck")
        assert not buf.wait_until_empty(timeout=0.05)

    def test_wait_until_empty_returns_after_reader_drains(self):
        buf = StreamBuffer()
        buf.write(b"abc")

        def reader():
            time.sleep(0.05)
            buf.read(10)

        thread = threading.Thread(target=reader)
        thread.start()
        assert buf.wait_until_empty(timeout=2.0)
        thread.join(timeout=2.0)

    def test_clear_discards_and_reports_count(self):
        buf = StreamBuffer()
        buf.write(b"abcdef")
        assert buf.clear() == 6
        assert buf.available() == 0


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            StreamBuffer(capacity=0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            StreamBuffer(capacity=-5)

    def test_unbounded_buffer_accepts_large_write(self):
        buf = StreamBuffer(capacity=None)
        buf.write(b"y" * 1_000_000)
        assert buf.available() == 1_000_000
