"""Tests for the asyncio adapters over detachable streams.

Each test drives its coroutine with ``asyncio.run`` so the suite needs
no asyncio pytest plugin; threads play the role of the filter pumps that
fire stream listeners in production.
"""

import asyncio
import threading
import time

import pytest

from repro.streams import (
    AsyncStreamEvent,
    StreamTimeoutError,
    make_pipe,
    read_async,
    read_chunks_async,
    wait_readable,
    wait_writable,
    write_async,
)


def run(coro):
    return asyncio.run(coro)


class TestAsyncStreamEvent:
    def test_listener_sets_event_across_threads(self):
        async def scenario():
            dos, dis = make_pipe("ev")
            with AsyncStreamEvent(dis) as event:
                threading.Timer(0.05, lambda: dos.write(b"x")).start()
                await asyncio.wait_for(event.wait(timeout=None), timeout=5.0)
            assert dis.read(timeout=0) == b"x"
            dos.close()

        run(scenario())

    def test_unsubscribes_on_exit(self):
        async def scenario():
            dos, dis = make_pipe("unsub")
            event = AsyncStreamEvent(dis)
            with event:
                pass
            # After exit the listener is gone: writing must not blow up and
            # the event must stay unset.
            dos.write(b"x")
            await asyncio.sleep(0.01)
            assert not event._event.is_set()
            dos.close()

        run(scenario())


class TestWaitHelpers:
    def test_wait_readable_immediate_when_buffered(self):
        async def scenario():
            dos, dis = make_pipe("ready")
            dos.write(b"data")
            assert await wait_readable(dis, timeout=1.0)
            dos.close()

        run(scenario())

    def test_wait_readable_wakes_on_late_write(self):
        async def scenario():
            dos, dis = make_pipe("late")
            threading.Timer(0.05, lambda: dos.write(b"late")).start()
            start = time.monotonic()
            assert await wait_readable(dis, timeout=5.0)
            assert time.monotonic() - start < 4.0
            assert dis.read(timeout=0) == b"late"
            dos.close()

        run(scenario())

    def test_wait_readable_true_at_eof(self):
        async def scenario():
            dos, dis = make_pipe("eof")
            dos.close()
            assert await wait_readable(dis, timeout=1.0)
            assert dis.read(timeout=0) == b""

        run(scenario())

    def test_wait_readable_times_out(self):
        async def scenario():
            _dos, dis = make_pipe("idle")
            start = time.monotonic()
            assert not await wait_readable(dis, timeout=0.1)
            assert time.monotonic() - start < 2.0

        run(scenario())

    def test_wait_writable_blocks_until_reader_drains(self):
        async def scenario():
            dos, dis = make_pipe("tiny", capacity=8)
            dos.write(b"x" * 8)  # buffer now full
            assert not await wait_writable(dos, timeout=0.1)

            def drain():
                time.sleep(0.05)
                dis.read(timeout=1.0)

            threading.Thread(target=drain).start()
            assert await wait_writable(dos, timeout=5.0)
            dos.close()

        run(scenario())


class TestAsyncReadWrite:
    def test_read_async_round_trip(self):
        async def scenario():
            dos, dis = make_pipe("rt")
            threading.Timer(0.02, lambda: dos.write(b"hello")).start()
            assert await read_async(dis, timeout=5.0) == b"hello"
            dos.close()
            assert await read_async(dis, timeout=5.0) == b""  # EOF

        run(scenario())

    def test_read_async_timeout_raises(self):
        async def scenario():
            _dos, dis = make_pipe("slow")
            with pytest.raises(StreamTimeoutError):
                await read_async(dis, timeout=0.1)

        run(scenario())

    def test_read_chunks_async_preserves_boundaries(self):
        async def scenario():
            dos, dis = make_pipe("chunks")
            dos.write(b"one")
            dos.write(b"two")
            assert await read_chunks_async(dis, timeout=1.0) == [b"one", b"two"]
            dos.close()
            assert await read_chunks_async(dis, timeout=1.0) == []

        run(scenario())

    def test_write_async_applies_backpressure(self):
        async def scenario():
            dos, dis = make_pipe("bp", capacity=4)
            assert await write_async(dos, b"aaaa", timeout=1.0)
            # Full: the polite write must wait, then fail on timeout.
            assert not await write_async(dos, b"bbbb", timeout=0.1)

            def drain():
                time.sleep(0.05)
                dis.read(timeout=1.0)

            threading.Thread(target=drain).start()
            assert await write_async(dos, b"cccc", timeout=5.0)
            dos.close()

        run(scenario())

    def test_async_reader_with_threaded_writer_stream(self):
        # The mixed idiom the module exists for: a thread writes (as a
        # filter pump would), a coroutine awaits and reads.
        async def scenario():
            dos, dis = make_pipe("mixed")
            payload = [f"part-{i};".encode() for i in range(50)]

            def writer():
                for part in payload:
                    dos.write(part)
                    time.sleep(0.001)
                dos.close()

            threading.Thread(target=writer).start()
            got = bytearray()
            while True:
                data = await read_async(dis, timeout=5.0)
                if not data:
                    break
                got += data
            assert bytes(got) == b"".join(payload)

        run(scenario())
