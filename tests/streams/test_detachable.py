"""Unit tests for detachable streams: connect, pause, reconnect, close."""

import threading
import time

import pytest

from repro.streams import (
    AlreadyConnectedError,
    DetachableInputStream,
    DetachableOutputStream,
    NotConnectedError,
    StreamClosedError,
    StreamTimeoutError,
    make_pipe,
)


class TestConnect:
    def test_connect_sets_both_sides(self):
        dos = DetachableOutputStream()
        dis = DetachableInputStream()
        dos.connect(dis)
        assert dos.connected and dis.connected
        assert dos.sink is dis
        assert dis.source is dos

    def test_connect_via_dis_delegates_to_dos(self):
        dos = DetachableOutputStream()
        dis = DetachableInputStream()
        dis.connect(dos)
        assert dos.sink is dis
        assert dis.source is dos

    def test_double_connect_raises(self):
        dos, dis = make_pipe()
        other = DetachableInputStream()
        with pytest.raises(AlreadyConnectedError):
            dos.connect(other)

    def test_connect_to_connected_dis_raises(self):
        _dos, dis = make_pipe()
        other = DetachableOutputStream()
        with pytest.raises(AlreadyConnectedError):
            other.connect(dis)

    def test_connect_none_raises(self):
        dos = DetachableOutputStream()
        with pytest.raises(ValueError):
            dos.connect(None)

    def test_make_pipe_returns_connected_pair(self):
        dos, dis = make_pipe("test")
        dos.write(b"abc")
        assert dis.read(3) == b"abc"


class TestWriteRead:
    def test_write_delivers_to_dis_buffer(self):
        dos, dis = make_pipe()
        dos.write(b"hello")
        assert dis.available() == 5
        assert dis.read(5) == b"hello"

    def test_write_returns_byte_count(self):
        dos, dis = make_pipe()
        assert dos.write(b"12345") == 5
        assert dos.write(b"") == 0

    def test_bytes_written_accumulates(self):
        dos, dis = make_pipe()
        dos.write(b"abc")
        dos.write(b"de")
        assert dos.bytes_written == 5
        assert dis.bytes_received == 5

    def test_receive_directly_into_dis(self):
        dis = DetachableInputStream()
        dis.receive(b"direct")
        assert dis.read(6) == b"direct"

    def test_read_blocks_until_data(self):
        dos, dis = make_pipe()
        result = []

        def reader():
            result.append(dis.read(10, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        dos.write(b"late")
        thread.join(timeout=2.0)
        assert result == [b"late"]

    def test_read_times_out_without_data(self):
        _dos, dis = make_pipe()
        with pytest.raises(StreamTimeoutError):
            dis.read(10, timeout=0.05)

    def test_write_on_unconnected_dos_times_out(self):
        dos = DetachableOutputStream(reconnect_wait=0.05)
        with pytest.raises(NotConnectedError):
            dos.write(b"nowhere")

    def test_flush_is_safe_noop(self):
        dos, dis = make_pipe()
        dos.write(b"x")
        dos.flush()
        assert dis.read(1) == b"x"


class TestPauseReconnect:
    def test_pause_marks_both_sides_switching(self):
        dos, dis = make_pipe()
        dos.pause()
        assert not dos.connected and not dis.connected
        assert dos.switching and dis.switching

    def test_pause_waits_for_buffer_to_drain(self):
        dos, dis = make_pipe()
        dos.write(b"pending")
        paused = threading.Event()

        def pauser():
            dos.pause(drain_timeout=2.0)
            paused.set()

        thread = threading.Thread(target=pauser)
        thread.start()
        time.sleep(0.05)
        assert not paused.is_set(), "pause must not complete while data is buffered"
        assert dis.read(7) == b"pending"
        assert paused.wait(timeout=2.0)
        thread.join(timeout=2.0)

    def test_pause_times_out_if_never_drained(self):
        dos, dis = make_pipe()
        dos.write(b"stuck")
        with pytest.raises(StreamTimeoutError):
            dos.pause(drain_timeout=0.05)
        # The connection is restored so the caller can retry.
        assert dos.connected

    def test_pause_on_dis_delegates_to_dos(self):
        dos, dis = make_pipe()
        dis.pause()
        assert dos.switching and dis.switching

    def test_pause_idempotent(self):
        dos, dis = make_pipe()
        dos.pause()
        dos.pause()
        assert dos.switching

    def test_reconnect_to_new_partner(self):
        dos, dis = make_pipe()
        new_dis = DetachableInputStream()
        dos.pause()
        dos.reconnect(new_dis)
        dos.write(b"rerouted")
        assert new_dis.read(8) == b"rerouted"
        assert dis.available() == 0

    def test_reconnect_while_connected_raises(self):
        dos, _dis = make_pipe()
        other = DetachableInputStream()
        with pytest.raises(AlreadyConnectedError):
            dos.reconnect(other)

    def test_reconnect_to_connected_dis_raises(self):
        dos, dis = make_pipe()
        dos.pause()
        _dos2, dis2 = make_pipe()
        with pytest.raises(AlreadyConnectedError):
            dos.reconnect(dis2)

    def test_reconnect_clears_switch_flags(self):
        dos, dis = make_pipe()
        dos.pause()
        dos.reconnect(dis)
        assert not dos.switching and not dis.switching
        assert dos.connected and dis.connected

    def test_write_blocks_across_pause_and_resumes_after_reconnect(self):
        dos, dis = make_pipe()
        dos.pause()
        delivered = []

        def writer():
            dos.write(b"delayed", timeout=2.0)
            delivered.append(True)

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert not delivered, "write must block while the stream is paused"
        dos.reconnect(dis)
        thread.join(timeout=2.0)
        assert delivered == [True]
        assert dis.read(7) == b"delayed"

    def test_reader_blocked_across_pause_gets_data_from_new_source(self):
        dos, dis = make_pipe()
        result = []

        def reader():
            result.append(dis.read(10, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        dos.pause()
        new_dos = DetachableOutputStream()
        new_dos.reconnect(dis)
        new_dos.write(b"fresh")
        thread.join(timeout=2.0)
        assert result == [b"fresh"]

    def test_splice_preserves_all_bytes(self):
        """Simulate the ControlThread splice: A->C becomes A->B->C."""
        a_dos, c_dis = make_pipe("ac")
        a_dos.write(b"first|")
        assert c_dis.read(6) == b"first|"
        a_dos.pause()

        b_dis = DetachableInputStream("b.in")
        b_dos = DetachableOutputStream("b.out")
        a_dos.reconnect(b_dis)
        b_dos.reconnect(c_dis)

        a_dos.write(b"second")
        assert b_dis.read(6) == b"second"
        b_dos.write(b"SECOND")
        assert c_dis.read(6) == b"SECOND"


class TestClose:
    def test_close_propagates_eof_to_reader(self):
        dos, dis = make_pipe()
        dos.write(b"tail")
        dos.close()
        assert dis.read(10) == b"tail"
        assert dis.read(10) == b""
        assert dis.at_eof()

    def test_write_after_close_raises(self):
        dos, _dis = make_pipe()
        dos.close()
        with pytest.raises(StreamClosedError):
            dos.write(b"nope")

    def test_close_is_idempotent(self):
        dos, _dis = make_pipe()
        dos.close()
        dos.close()
        assert dos.closed

    def test_dis_close_discards_buffer(self):
        dos, dis = make_pipe()
        dos.write(b"junk")
        dis.close()
        assert dis.read(10) == b""
        assert dis.closed

    def test_pause_after_close_raises(self):
        dos, _dis = make_pipe()
        dos.close()
        with pytest.raises(StreamClosedError):
            dos.pause()

    def test_eof_wakes_blocked_reader(self):
        dos, dis = make_pipe()
        result = []

        def reader():
            result.append(dis.read(10, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        dos.close()
        thread.join(timeout=2.0)
        assert result == [b""]


class TestConcurrentTransfer:
    def test_large_transfer_with_concurrent_reader(self):
        dos, dis = make_pipe(capacity=4096)
        payload = bytes(range(256)) * 512  # 128 KiB
        received = bytearray()

        def reader():
            while True:
                chunk = dis.read(8192, timeout=5.0)
                if not chunk:
                    return
                received.extend(chunk)

        thread = threading.Thread(target=reader)
        thread.start()
        for offset in range(0, len(payload), 4096):
            dos.write(payload[offset:offset + 4096], timeout=5.0)
        dos.close()
        thread.join(timeout=5.0)
        assert bytes(received) == payload

    def test_pause_reconnect_mid_transfer_loses_nothing(self):
        dos, dis = make_pipe(capacity=1024)
        total_chunks = 200
        received = bytearray()
        stop_reading = threading.Event()

        def reader():
            while not stop_reading.is_set() or dis.available():
                try:
                    chunk = dis.read(4096, timeout=0.05)
                except StreamTimeoutError:
                    continue
                if not chunk:
                    break
                received.extend(chunk)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()

        def writer():
            for i in range(total_chunks):
                dos.write(f"chunk-{i:04d};".encode(), timeout=5.0)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()

        # Pause and immediately reconnect to the same DIS a few times while
        # the transfer is running: no bytes may be lost or duplicated.
        for _ in range(5):
            time.sleep(0.01)
            dos.pause(drain_timeout=5.0)
            dos.reconnect(dis)

        writer_thread.join(timeout=10.0)
        time.sleep(0.1)
        stop_reading.set()
        reader_thread.join(timeout=5.0)

        expected = b"".join(f"chunk-{i:04d};".encode() for i in range(total_chunks))
        assert bytes(received) == expected
