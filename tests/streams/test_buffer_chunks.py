"""Pins for the chunk-deque StreamBuffer data path.

The buffer was rewritten from a coalescing ``bytearray`` FIFO to a deque of
the writers' own ``bytes`` objects (zero-copy on the aligned path, batch
APIs, waiter-gated notifies).  These tests pin the new mechanics — chunk
identity, batch semantics, budget/splitting rules — *and* stress the old
contracts (interleaved writer/reader threads, ``force=True`` overshoot,
capacity backpressure, EOF/broken transitions, ``wait_until_empty``) so the
redesign cannot drift from the semantics the composition protocol needs.
"""

import random
import threading
import time

import pytest

from repro.streams import StreamBuffer, StreamClosedError, StreamTimeoutError
from repro.streams.exceptions import BrokenStreamError


class TestZeroCopyAlignment:
    def test_aligned_read_returns_the_written_object(self):
        buf = StreamBuffer()
        payload = b"x" * 4096
        buf.write(payload)
        assert buf.read(65536) is payload  # no copy, no slice

    def test_read_chunks_returns_the_written_objects(self):
        buf = StreamBuffer()
        chunks = [bytes([i]) * 100 for i in range(5)]
        for chunk in chunks:
            buf.write(chunk)
        popped = buf.read_chunks(max_bytes=65536)
        assert all(a is b for a, b in zip(popped, chunks))

    def test_misaligned_read_slices_and_keeps_remainder(self):
        buf = StreamBuffer()
        buf.write(b"abcdefgh")
        assert buf.read(3) == b"abc"
        assert buf.available() == 5
        assert buf.read(100) == b"defgh"

    def test_read_coalesces_across_chunks_like_the_old_buffer(self):
        buf = StreamBuffer()
        buf.write(b"ab")
        buf.write(b"cd")
        buf.write(b"ef")
        assert buf.read(5) == b"abcde"
        assert buf.read(5) == b"f"

    def test_peek_spans_chunks_without_consuming(self):
        buf = StreamBuffer()
        buf.write(b"abc")
        buf.write(b"def")
        assert buf.peek(5) == b"abcde"
        assert buf.available() == 6


class TestReadChunks:
    def test_respects_byte_budget_on_whole_chunks(self):
        buf = StreamBuffer()
        for _ in range(4):
            buf.write(b"x" * 100)
        batch = buf.read_chunks(max_bytes=250)
        assert [len(c) for c in batch] == [100, 100]
        assert buf.available() == 200

    def test_splits_only_the_head_chunk_to_make_progress(self):
        buf = StreamBuffer()
        buf.write(b"y" * 1000)
        batch = buf.read_chunks(max_bytes=300)
        assert [len(c) for c in batch] == [300]
        assert buf.available() == 700

    def test_max_chunk_caps_each_piece(self):
        buf = StreamBuffer()
        buf.write(b"z" * 1000)
        pieces = []
        while buf.available():
            pieces.extend(buf.read_chunks(max_bytes=65536, max_chunk=256))
        assert all(len(p) <= 256 for p in pieces)
        assert b"".join(pieces) == b"z" * 1000

    def test_oversized_head_yields_a_full_batch_not_one_piece(self):
        """A head chunk larger than max_chunk is sliced into as many
        full-size pieces as the byte budget allows in ONE call — a filter
        batching a large upstream chunk must not degrade to one piece per
        lock round-trip."""
        buf = StreamBuffer()
        buf.write(b"w" * 1000)
        batch = buf.read_chunks(max_bytes=65536, max_chunk=256)
        assert [len(p) for p in batch] == [256, 256, 256, 232]
        assert buf.available() == 0

    def test_returns_empty_list_only_at_eof(self):
        buf = StreamBuffer()
        buf.write(b"tail")
        buf.close_for_writing()
        assert buf.read_chunks(max_bytes=100) == [b"tail"]
        assert buf.read_chunks(max_bytes=100) == []
        assert buf.at_eof()

    def test_times_out_while_open_and_empty(self):
        buf = StreamBuffer()
        with pytest.raises(StreamTimeoutError):
            buf.read_chunks(max_bytes=100, timeout=0.05)

    def test_blocked_batch_reader_wakes_on_write(self):
        buf = StreamBuffer()
        result = []

        def reader():
            result.append(buf.read_chunks(max_bytes=100, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        buf.write(b"ping")
        thread.join(timeout=2.0)
        assert result == [[b"ping"]]


class TestWriteChunks:
    def test_batch_write_preserves_order_and_totals(self):
        buf = StreamBuffer()
        written = buf.write_chunks([b"ab", b"", b"cd", b"ef"])
        assert written == 6
        assert buf.bytes_written == 6
        assert buf.read_chunks(max_bytes=100) == [b"ab", b"cd", b"ef"]

    def test_batch_write_blocks_per_chunk_on_capacity(self):
        buf = StreamBuffer(capacity=8)
        collected = []

        def reader():
            while True:
                chunk = buf.read(4, timeout=2.0)
                if not chunk:
                    return
                collected.append(chunk)

        thread = threading.Thread(target=reader)
        thread.start()
        buf.write_chunks([b"x" * 10 for _ in range(5)], timeout=2.0)
        buf.close_for_writing()
        thread.join(timeout=2.0)
        assert b"".join(collected) == b"x" * 50

    def test_batch_write_after_close_raises(self):
        buf = StreamBuffer()
        buf.close_for_writing()
        with pytest.raises(StreamClosedError):
            buf.write_chunks([b"nope"])

    def test_batch_write_on_broken_buffer_raises(self):
        buf = StreamBuffer()
        buf.mark_broken()
        with pytest.raises(BrokenStreamError):
            buf.write_chunks([b"data"])

    def test_force_batch_overshoots_capacity_without_blocking(self):
        buf = StreamBuffer(capacity=16)
        written = buf.write_chunks([b"a" * 100, b"b" * 100], force=True)
        assert written == 200
        assert buf.available() == 200  # bound ignored, nothing blocked

    def test_force_single_write_overshoots_capacity(self):
        buf = StreamBuffer(capacity=4)
        buf.write(b"abcd")
        buf.write(b"efgh", force=True)
        assert buf.available() == 8
        assert buf.read_exactly(8) == b"abcdefgh"


class TestTransitionsUnderBatching:
    def test_mark_broken_wakes_blocked_batch_writer(self):
        buf = StreamBuffer(capacity=4)
        buf.write(b"full")
        errors = []

        def writer():
            try:
                buf.write_chunks([b"more"], timeout=5.0)
            except BrokenStreamError as exc:
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        buf.mark_broken()
        thread.join(timeout=2.0)
        assert len(errors) == 1

    def test_two_blocked_writers_both_complete_after_one_drain(self):
        """A single drain that frees room for several parked writers must
        reach all of them (chained wake), not just the first."""
        buf = StreamBuffer(capacity=8)
        buf.write(b"x" * 8)
        done = []

        def writer(tag):
            buf.write(tag * 4, timeout=5.0)
            done.append(tag)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in (b"a", b"b")]
        for t in threads:
            t.start()
        while buf._writers_waiting < 2:  # both writers parked on the full buffer
            time.sleep(0.001)
        assert buf.read(8) == b"x" * 8  # one drain frees room for both
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(done) == [b"a", b"b"]

    def test_close_wakes_blocked_batch_reader_with_eof(self):
        buf = StreamBuffer()
        result = []

        def reader():
            result.append(buf.read_chunks(max_bytes=100, timeout=5.0))

        thread = threading.Thread(target=reader)
        thread.start()
        buf.close_for_writing()
        thread.join(timeout=2.0)
        assert result == [[]]

    def test_wait_until_empty_drains_through_chunked_reads(self):
        buf = StreamBuffer()
        buf.write_chunks([b"abc", b"def", b"ghi"])

        def reader():
            while buf.read_chunks(max_bytes=4, timeout=2.0):
                pass

        thread = threading.Thread(target=reader)
        thread.start()
        assert buf.wait_until_empty(timeout=2.0)
        buf.close_for_writing()
        thread.join(timeout=2.0)

    def test_clear_discards_queued_chunks(self):
        buf = StreamBuffer()
        buf.write_chunks([b"abc", b"def"])
        assert buf.clear() == 6
        assert buf.available() == 0
        assert buf.bytes_written == 6


class TestInterleavedStress:
    """Writer and reader threads race over a bounded buffer; every byte must
    arrive, in order, whatever mix of single/batch calls each side uses."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_threaded_round_trip_is_order_and_content_exact(self, seed):
        rng = random.Random(seed)
        payloads = [bytes([rng.randrange(256)]) * rng.randint(1, 700)
                    for _ in range(400)]
        expected = b"".join(payloads)
        buf = StreamBuffer(capacity=1024)
        received = []

        def writer():
            wrng = random.Random(seed + 1000)
            queue = list(payloads)
            while queue:
                if wrng.random() < 0.5:
                    count = wrng.randint(1, 8)
                    batch, queue = queue[:count], queue[count:]
                    buf.write_chunks(batch, timeout=10.0)
                else:
                    buf.write(queue.pop(0), timeout=10.0)
            buf.close_for_writing()

        def reader():
            rrng = random.Random(seed + 2000)
            while True:
                if rrng.random() < 0.5:
                    chunks = buf.read_chunks(max_bytes=rrng.randint(1, 2048),
                                             timeout=10.0)
                    if not chunks:
                        return
                    received.extend(chunks)
                else:
                    chunk = buf.read(rrng.randint(1, 2048), timeout=10.0)
                    if not chunk:
                        return
                    received.append(chunk)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert b"".join(received) == expected
        assert buf.bytes_read == len(expected)
