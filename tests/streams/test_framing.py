"""Unit tests for the packet framing layer."""

import pytest

from repro.streams import (
    FramingError,
    FrameDecoder,
    FrameReader,
    FrameWriter,
    HEADER_SIZE,
    StreamTimeoutError,
    encode_frame,
    encode_frames,
    make_pipe,
)


class TestEncodeFrame:
    def test_frame_layout(self):
        frame = encode_frame(b"abc")
        assert len(frame) == HEADER_SIZE + 3
        assert frame[0] == 0xC5
        assert int.from_bytes(frame[1:5], "big") == 3
        assert frame[HEADER_SIZE:] == b"abc"

    def test_empty_payload_allowed(self):
        frame = encode_frame(b"")
        assert len(frame) == HEADER_SIZE

    def test_none_payload_rejected(self):
        with pytest.raises(ValueError):
            encode_frame(None)

    def test_encode_frames_concatenates(self):
        data = encode_frames([b"a", b"bb", b"ccc"])
        decoder = FrameDecoder()
        assert decoder.feed(data) == [b"a", b"bb", b"ccc"]


class TestFrameDecoder:
    def test_single_frame_in_one_chunk(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"payload")) == [b"payload"]

    def test_frame_split_across_chunks(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"split-payload")
        assert decoder.feed(frame[:3]) == []
        assert decoder.feed(frame[3:7]) == []
        assert decoder.feed(frame[7:]) == [b"split-payload"]

    def test_multiple_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        chunk = encode_frame(b"one") + encode_frame(b"two")
        assert decoder.feed(chunk) == [b"one", b"two"]

    def test_byte_at_a_time_feeding(self):
        decoder = FrameDecoder()
        payloads = [b"x" * 5, b"", b"hello world"]
        stream = encode_frames(payloads)
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        assert out == payloads

    def test_bad_magic_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError):
            decoder.feed(b"\x00\x00\x00\x00\x05hello")

    def test_oversized_length_raises(self):
        decoder = FrameDecoder()
        bad = bytes([0xC5]) + (2 ** 31).to_bytes(4, "big") + b"x"
        with pytest.raises(FramingError):
            decoder.feed(bad)

    def test_pending_bytes_reported(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"abcdef")
        decoder.feed(frame[:4])
        assert decoder.has_partial_frame()
        assert decoder.pending_bytes == 4

    def test_frames_decoded_counter(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frames([b"a", b"b", b"c"]))
        assert decoder.frames_decoded == 3


class TestFrameReaderWriter:
    def test_round_trip_over_pipe(self):
        dos, dis = make_pipe()
        writer = FrameWriter(dos)
        reader = FrameReader(dis)
        writer.write_packet(b"packet-1")
        writer.write_packet(b"packet-2")
        assert reader.read_packet(timeout=1.0) == b"packet-1"
        assert reader.read_packet(timeout=1.0) == b"packet-2"

    def test_read_packet_returns_none_at_eof(self):
        dos, dis = make_pipe()
        writer = FrameWriter(dos)
        reader = FrameReader(dis)
        writer.write_packet(b"last")
        writer.close()
        assert reader.read_packet(timeout=1.0) == b"last"
        assert reader.read_packet(timeout=1.0) is None

    def test_read_packet_times_out(self):
        _dos, dis = make_pipe()
        reader = FrameReader(dis)
        with pytest.raises(StreamTimeoutError):
            reader.read_packet(timeout=0.05)

    def test_truncated_stream_raises(self):
        dos, dis = make_pipe()
        reader = FrameReader(dis)
        frame = encode_frame(b"never finished")
        dos.write(frame[:-3])
        dos.close()
        with pytest.raises(FramingError):
            reader.read_packet(timeout=1.0)

    def test_write_packets_and_read_all(self):
        dos, dis = make_pipe()
        writer = FrameWriter(dos)
        reader = FrameReader(dis)
        payloads = [bytes([i]) * i for i in range(1, 20)]
        writer.write_packets(payloads)
        writer.close()
        assert reader.read_all(timeout=1.0) == payloads

    def test_iteration_protocol(self):
        dos, dis = make_pipe()
        writer = FrameWriter(dos)
        reader = FrameReader(dis)
        writer.write_packets([b"a", b"b", b"c"])
        writer.close()
        assert list(reader) == [b"a", b"b", b"c"]

    def test_counters(self):
        dos, dis = make_pipe()
        writer = FrameWriter(dos)
        reader = FrameReader(dis)
        writer.write_packets([b"1", b"2"])
        writer.close()
        reader.read_all(timeout=1.0)
        assert writer.packets_written == 2
        assert reader.packets_read == 2
