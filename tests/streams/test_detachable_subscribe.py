"""Subscriber-hook semantics and pause/reconnect races on detachable streams.

The readiness-callback hook added for the event engine must observe every
byte that arrives, and — the invariant the whole composition protocol rests
on — a writer racing against pause/reconnect splices must never lose or
duplicate a byte, with or without subscribers attached.
"""

import threading
from time import sleep as _sleep

import pytest

from repro.streams import (
    DetachableInputStream,
    DetachableOutputStream,
    StreamClosedError,
    make_pipe,
)


class TestSubscriberHook:
    def test_subscriber_fires_on_receive(self):
        dos, dis = make_pipe("sub")
        events = []
        dis.subscribe(lambda: events.append(dis.available()))
        dos.write(b"abc")
        assert events  # data arrival reported
        assert dis.read(10) == b"abc"

    def test_subscriber_fires_on_source_close(self):
        dos, dis = make_pipe("eof")
        fired = threading.Event()
        dis.subscribe(fired.set)
        dos.close()
        assert fired.is_set()
        assert dis.at_eof()

    def test_dos_subscriber_fires_on_reattach(self):
        dos = DetachableOutputStream("w")
        dis_a = DetachableInputStream("a")
        dis_b = DetachableInputStream("b")
        attaches = []
        dos.subscribe(lambda: attaches.append(dos.connected))
        dos.connect(dis_a)
        dos.pause(drain_timeout=1.0)
        dos.reconnect(dis_b)
        assert len(attaches) >= 2  # connect + reconnect both notified

    def test_unsubscribe_and_duplicate_registration(self):
        dos, dis = make_pipe("unsub")
        count = [0]

        def listener():
            count[0] += 1

        dis.subscribe(listener)
        dis.subscribe(listener)  # duplicate is a no-op
        dos.write(b"x")
        first = count[0]
        assert first >= 1
        dis.unsubscribe(listener)
        dos.write(b"y")
        dis.read(10)
        assert count[0] == first  # no further notifications

    def test_broken_subscriber_does_not_break_the_pipe(self):
        dos, dis = make_pipe("bad-listener")

        def bad():
            raise RuntimeError("listener bug")

        dis.subscribe(bad)
        assert dos.write(b"payload") == 7
        assert dis.read(10) == b"payload"

    def test_subscriber_sees_every_byte(self):
        dos, dis = make_pipe("count")
        seen = []
        dis.subscribe(lambda: seen.append(True))
        for i in range(50):
            dos.write(b"x" * (i + 1))
            dis.read(1024)
        # One notification per receive at minimum (reads may add more).
        assert len(seen) >= 50


class TestPauseReconnectRaces:
    """Concurrent reconnect + write must never drop or duplicate bytes."""

    RECORD = 8  # fixed-size numbered records: b"%07d;" % i

    def _records(self, count):
        return [b"%07d;" % i for i in range(count)]

    def test_writer_racing_splices_loses_nothing(self):
        records = self._records(3000)
        dos = DetachableOutputStream("racer", reconnect_wait=30.0)
        sides = [DetachableInputStream(f"side-{i}", capacity=None)
                 for i in range(2)]
        received = [bytearray(), bytearray()]
        notified = [threading.Event(), threading.Event()]
        for i, dis in enumerate(sides):
            dis.subscribe(notified[i].set)
        stop_readers = threading.Event()

        def reader(index):
            dis = sides[index]
            while not (stop_readers.is_set() and dis.available() == 0):
                try:
                    chunk = dis.read(4096, timeout=0.05)
                except Exception:
                    continue
                if chunk:
                    received[index].extend(chunk)

        readers = [threading.Thread(target=reader, args=(i,)) for i in range(2)]
        for t in readers:
            t.start()

        def writer():
            for i, record in enumerate(records):
                dos.write(record)
                if i % 50 == 49:
                    _sleep(0.001)  # stretch the write burst across splices

        dos.connect(sides[0])
        w = threading.Thread(target=writer)
        w.start()
        active = 0
        # Splice back and forth while the writer hammers the stream.
        for _ in range(40):
            dos.pause(drain_timeout=10.0)
            active = 1 - active
            dos.reconnect(sides[active])
            _sleep(0.002)
        w.join(timeout=30.0)
        assert not w.is_alive()
        stop_readers.set()
        for t in readers:
            t.join(timeout=10.0)

        # Every side that received bytes saw data-arrival notifications via
        # the subscriber hook.
        for index in range(2):
            if received[index]:
                assert notified[index].is_set()
        assert any(notified[i].is_set() for i in range(2))

        # Records are atomic per write; each must land on exactly one side,
        # in order, with nothing lost and nothing duplicated.
        combined = []
        for side in received:
            assert len(side) % self.RECORD == 0
            parsed = [bytes(side[i:i + self.RECORD])
                      for i in range(0, len(side), self.RECORD)]
            assert parsed == sorted(parsed)  # per-side order preserved
            combined.extend(parsed)
        assert sorted(combined) == records

    def test_reconnect_storm_with_subscribers_and_closes(self):
        records = self._records(500)
        dos = DetachableOutputStream("storm", reconnect_wait=30.0)
        dis = DetachableInputStream("storm-in", capacity=None)
        arrivals = []
        dis.subscribe(lambda: arrivals.append(dis.available()))
        dos.connect(dis)
        got = bytearray()

        def reader():
            while True:
                chunk = dis.read(4096, timeout=5.0)
                if not chunk:
                    return
                got.extend(chunk)

        t = threading.Thread(target=reader)
        t.start()
        for i, record in enumerate(records):
            dos.write(record)
            if i % 100 == 99:
                dos.pause(drain_timeout=10.0)
                dos.reconnect(dis)
        dos.close()
        t.join(timeout=10.0)
        assert bytes(got) == b"".join(records)
        assert arrivals  # the hook observed the stream throughout
        with pytest.raises(StreamClosedError):
            dos.write(b"late")

    def test_try_write_respects_detach_and_close(self):
        dos = DetachableOutputStream("nb")
        dis = DetachableInputStream("nb-in")
        assert dos.try_write(b"parked") is False  # detached: nothing written
        dos.connect(dis)
        assert dos.try_write(b"parked") is True
        assert dis.read(10) == b"parked"
        dos.pause(drain_timeout=1.0)
        assert dos.try_write(b"mid-splice") is False
        dos.reconnect(dis)
        assert dos.try_write(b"mid-splice") is True
        assert dis.read(20) == b"mid-splice"
        dos.close()
        with pytest.raises(StreamClosedError):
            dos.try_write(b"dead")

    def test_try_write_overshoots_capacity_instead_of_blocking(self):
        dos = DetachableOutputStream("force")
        dis = DetachableInputStream("force-in", capacity=16)
        dos.connect(dis)
        assert dos.try_write(b"x" * 64) is True  # never blocks
        assert dis.available() == 64
        assert dis.read(100) == b"x" * 64
