"""Batched DOS/DIS APIs must preserve the detachable-pipe semantics.

``write_many``/``try_write_many``/``read_chunks`` move whole batches per
lock round-trip; these tests pin that the pause/drain protocol, the
detached-retry contract, and byte-exact ordering are unchanged from the
single-chunk paths.
"""

import threading

import pytest

from repro.streams import (
    DetachableInputStream,
    DetachableOutputStream,
    StreamClosedError,
    make_pipe,
)


class TestWriteMany:
    def test_batch_round_trips_in_order(self):
        dos, dis = make_pipe()
        assert dos.write_many([b"ab", b"cd", b"ef"]) == 6
        assert dos.bytes_written == 6
        assert dis.read_chunks(max_bytes=100) == [b"ab", b"cd", b"ef"]

    def test_empty_chunks_are_dropped(self):
        dos, dis = make_pipe()
        assert dos.write_many([b"", b"xy", b""]) == 2
        assert dis.read(10) == b"xy"

    def test_empty_batch_is_noop(self):
        dos, _dis = make_pipe()
        assert dos.write_many([]) == 0
        assert dos.bytes_written == 0

    def test_write_many_blocks_through_pause_and_reconnect(self):
        dos, dis = make_pipe(name="left")
        dos.write(b"seed")
        done = threading.Event()

        def drain_and_pause():
            dis.read(100)
            dos.pause(drain_timeout=2.0)
            new_dis = DetachableInputStream(name="right")
            dos.reconnect(new_dis)
            while not done.is_set():
                if new_dis.available():
                    chunks.extend(new_dis.read_chunks(max_bytes=100, timeout=2.0))
                    done.set()

        chunks = []
        thread = threading.Thread(target=drain_and_pause)
        thread.start()
        # This batch lands either before the pause (drained from the old
        # DIS is impossible — we read it above) or blocks through the
        # switch and lands on the reconnected DIS.
        assert dos.write_many([b"batch-1", b"batch-2"], timeout=5.0) == 14
        assert done.wait(timeout=5.0)
        thread.join(timeout=5.0)
        assert b"".join(chunks) == b"batch-1batch-2"

    def test_pause_drains_in_flight_batch_completely(self):
        dos, dis = make_pipe()
        dos.write_many([b"aa", b"bb", b"cc"])

        def reader():
            total = 0
            while total < 6:
                total += len(dis.read(100, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        dos.pause(drain_timeout=2.0)  # must not raise: reader drains batch
        thread.join(timeout=2.0)
        assert not dos.connected and dos.switching


class TestTryWriteMany:
    def test_detached_returns_false_and_delivers_nothing(self):
        dos = DetachableOutputStream(name="loose")
        dis = DetachableInputStream(name="target")
        assert dos.try_write_many([b"a", b"b"]) is False
        assert dos.bytes_written == 0
        dos.connect(dis)
        assert dos.try_write_many([b"a", b"b"]) is True
        assert dis.read_chunks(max_bytes=10) == [b"a", b"b"]

    def test_force_delivery_overshoots_capacity(self):
        dos = DetachableOutputStream(name="out")
        dis = DetachableInputStream(name="in", capacity=4)
        dos.connect(dis)
        assert dos.try_write_many([b"abcd", b"efgh", b"ijkl"]) is True
        assert dis.available() == 12  # force path ignores the bound

    def test_closed_raises(self):
        dos, _dis = make_pipe()
        dos.close()
        with pytest.raises(StreamClosedError):
            dos.try_write_many([b"x"])

    def test_empty_batch_succeeds_even_detached(self):
        dos = DetachableOutputStream(name="loose")
        assert dos.try_write_many([]) is True


class TestReadChunks:
    def test_blocks_until_data_then_pops_batch(self):
        dos, dis = make_pipe()
        result = []

        def reader():
            result.append(dis.read_chunks(max_bytes=100, timeout=2.0))

        thread = threading.Thread(target=reader)
        thread.start()
        dos.write_many([b"one", b"two"])
        thread.join(timeout=2.0)
        assert result == [[b"one", b"two"]]

    def test_eof_returns_empty_list(self):
        dos, dis = make_pipe()
        dos.write(b"tail")
        dos.close()
        assert dis.read_chunks(max_bytes=100, timeout=2.0) == [b"tail"]
        assert dis.read_chunks(max_bytes=100, timeout=2.0) == []
        assert dis.at_eof()

    def test_closed_dis_returns_empty_list(self):
        _dos, dis = make_pipe()
        dis.close()
        assert dis.read_chunks(max_bytes=100) == []

    def test_receive_many_counts_and_orders(self):
        _dos, dis = make_pipe()
        assert dis.receive_many([b"abc", b"de"]) == 5
        assert dis.bytes_received == 5
        assert dis.read_exactly(5) == b"abcde"
