"""SO_REUSEPORT / SO_REUSEADDR join options on the UDP transport."""

import socket

import pytest

from repro.transport import TransportError, UdpTransport, encode_datagram


@pytest.fixture
def transport():
    t = UdpTransport()
    yield t
    t.close()


class TestReusePort:
    def test_two_members_share_one_port(self, transport):
        channel = transport.open_channel("shared")
        first = channel.join("w0", address=("127.0.0.1", 0), reuse_port=True)
        port = first.address[1]
        second = channel.join("w1", address=("127.0.0.1", port),
                              reuse_port=True)
        assert second.address[1] == port

    def test_kernel_shards_datagrams_across_sharers(self, transport):
        # Each datagram goes to exactly one of the sharing sockets: the
        # union sees every payload exactly once.
        channel = transport.open_channel("sharded")
        first = channel.join("w0", address=("127.0.0.1", 0), reuse_port=True)
        port = first.address[1]
        second = channel.join("w1", address=("127.0.0.1", port),
                              reuse_port=True)
        payloads = {b"dgram-%03d" % i for i in range(50)}
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for payload in sorted(payloads):
            sender.sendto(encode_datagram(payload), ("127.0.0.1", port))
        sender.close()
        import time

        deadline = time.monotonic() + 5.0
        got = []
        while len(got) < len(payloads) and time.monotonic() < deadline:
            got.extend(first.take())
            got.extend(second.take())
            time.sleep(0.01)
        assert sorted(got) == sorted(payloads)

    def test_without_reuse_port_same_address_fails(self, transport):
        channel = transport.open_channel("exclusive")
        first = channel.join("w0", address=("127.0.0.1", 0))
        with pytest.raises(OSError):
            channel.join("w1", address=("127.0.0.1", first.address[1]))

    def test_missing_so_reuseport_raises_clear_error(self, transport,
                                                     monkeypatch):
        # Simulate a platform without the constant: the error must name
        # the option, not surface as a mysterious bind failure.
        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        channel = transport.open_channel("no-constant")
        with pytest.raises(TransportError, match="SO_REUSEPORT"):
            channel.join("w0", address=("127.0.0.1", 0), reuse_port=True)
        # The failed join released its name: joining without the option
        # works (no leaked half-registered member).
        receiver = channel.join("w0", address=("127.0.0.1", 0))
        assert receiver.address[1] > 0

    def test_reuse_addr_option_sets_socket_flag(self, transport):
        channel = transport.open_channel("reuseaddr")
        receiver = channel.join("w0", address=("127.0.0.1", 0),
                                reuse_addr=True)
        assert receiver._socket.getsockopt(socket.SOL_SOCKET,
                                           socket.SO_REUSEADDR) != 0
