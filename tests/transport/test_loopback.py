"""Semantics of the loopback transport (and the shared memory pipes)."""

import threading

import pytest

from repro.transport import (
    LoopbackTransport,
    TransportError,
    TransportTimeoutError,
    memory_stream_pair,
)


@pytest.fixture
def transport():
    t = LoopbackTransport()
    yield t
    t.close()


class TestLoopbackChannel:
    def test_multicast_reaches_every_member(self, transport):
        channel = transport.open_channel("c")
        a = channel.join("a")
        b = channel.join("b")
        assert channel.send(b"hello") == 2
        assert a.take() == [b"hello"]
        assert b.take() == [b"hello"]
        assert channel.packets_sent == 1
        assert channel.bytes_sent == 5

    def test_unicast_targets_one_member(self, transport):
        channel = transport.open_channel("c")
        a = channel.join("a")
        b = channel.join("b")
        assert channel.send_to("a", b"solo")
        assert not channel.send_to("ghost", b"lost")
        assert a.take() == [b"solo"]
        assert b.take() == []

    def test_duplicate_member_rejected(self, transport):
        channel = transport.open_channel("c")
        channel.join("a")
        with pytest.raises(TransportError):
            channel.join("a")

    def test_open_channel_is_idempotent_per_name(self, transport):
        assert transport.open_channel("c") is transport.open_channel("c")
        assert transport.open_channel("c") is not transport.open_channel("d")

    def test_close_marks_members_eof_after_drain(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        channel.send(b"one")
        channel.close()
        assert not receiver.at_eof()  # one payload still queued
        assert receiver.recv(timeout=1.0) == b"one"
        assert receiver.recv(timeout=1.0) is None
        assert receiver.at_eof()

    def test_send_after_close_raises(self, transport):
        channel = transport.open_channel("c")
        channel.close()
        with pytest.raises(TransportError):
            channel.send(b"late")

    def test_join_after_close_sees_immediate_eof(self, transport):
        channel = transport.open_channel("c")
        channel.close()
        receiver = channel.join("late")
        assert receiver.at_eof()

    def test_leave_marks_receiver_eof(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        channel.leave("a")
        assert receiver.at_eof()
        assert channel.members() == []

    def test_recv_timeout(self, transport):
        receiver = transport.open_channel("c").join("a")
        with pytest.raises(TransportTimeoutError):
            receiver.recv(timeout=0.05)

    def test_blocking_recv_wakes_on_delivery(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        got = []
        thread = threading.Thread(
            target=lambda: got.append(receiver.recv(timeout=5.0)))
        thread.start()
        channel.send(b"wake")
        thread.join(timeout=5.0)
        assert got == [b"wake"]

    def test_subscribe_fires_on_delivery_and_eof(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        events = []
        receiver.subscribe(lambda: events.append("event"))
        channel.send(b"x")
        channel.close()
        assert len(events) == 2

    def test_on_receive_callback(self, transport):
        seen = []
        channel = transport.open_channel("c")
        channel.join("a", on_receive=seen.append)
        channel.send(b"cb")
        assert seen == [b"cb"]


class TestMemoryStreams:
    def test_pair_round_trip_with_chunk_splitting(self):
        client, server = memory_stream_pair()
        client.send(b"abcdef")
        assert server.recv(4, timeout=1.0) == b"abcd"
        assert server.recv(4, timeout=1.0) == b"ef"
        server.send(b"reply")
        assert client.recv(timeout=1.0) == b"reply"

    def test_half_close_gives_peer_eof(self):
        client, server = memory_stream_pair()
        client.send(b"last")
        client.close_sending()
        assert server.recv(timeout=1.0) == b"last"
        assert server.recv(timeout=1.0) == b""

    def test_recv_timeout(self):
        client, _server = memory_stream_pair()
        with pytest.raises(TransportTimeoutError):
            client.recv(timeout=0.05)

    def test_listen_connect_accept(self, transport):
        listener = transport.listen("svc")
        assert listener.address == "svc"
        client = transport.connect("svc")
        server = listener.accept(timeout=1.0)
        client.send(b"ping")
        assert server.recv(timeout=1.0) == b"ping"

    def test_connect_unknown_address_raises(self, transport):
        with pytest.raises(TransportError):
            transport.connect("nowhere")

    def test_listen_duplicate_address_raises(self, transport):
        transport.listen("svc")
        with pytest.raises(TransportError):
            transport.listen("svc")

    def test_accept_timeout(self, transport):
        listener = transport.listen("svc")
        with pytest.raises(TransportTimeoutError):
            listener.accept(timeout=0.05)
