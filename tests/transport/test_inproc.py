"""The inproc transport must preserve the simulation's semantics exactly."""

import pytest

from repro.net import DistanceLoss, FixedPatternLoss, WirelessLAN
from repro.transport import InprocChannel, InprocTransport, TransportError


class TestInprocChannel:
    def test_wraps_an_existing_wlan(self):
        wlan = WirelessLAN(seed=5)
        channel = InprocChannel("wlan", wlan=wlan)
        receiver = channel.join("laptop")
        channel.send(b"pkt")
        assert receiver.take() == [b"pkt"]
        # The same packet went through the simulated access point.
        assert wlan.access_point.packets_sent == 1
        assert wlan.access_point.receiver("laptop").stats.packets_received == 1

    def test_loss_model_applies_per_member(self):
        channel = InprocChannel("wlan")
        lossy = channel.join("lossy",
                             loss_model=FixedPatternLoss([True, False]))
        clean = channel.join("clean")
        channel.send(b"p1")
        channel.send(b"p2")
        assert lossy.take() == [b"p2"]        # first packet lost
        assert clean.take() == [b"p1", b"p2"]  # no-loss default
        assert lossy.stats.packets_lost == 1

    def test_seeded_losses_are_deterministic(self):
        def run(seed):
            channel = InprocChannel("wlan", seed=seed)
            receiver = channel.join("m", distance_m=30.0, seed=seed)
            for i in range(200):
                channel.send(bytes([i % 256]))
            return [bytes(p) for p in receiver.take()]

        assert run(11) == run(11)
        assert run(11) != run(12)  # different seed, different losses

    def test_distance_and_move(self):
        channel = InprocChannel("wlan")
        receiver = channel.join("walker", distance_m=5.0, seed=3)
        assert isinstance(receiver.wireless.loss_model, DistanceLoss)
        receiver.move_to(40.0)
        assert receiver.wireless.distance_m == 40.0

    def test_send_to_unicasts_through_the_access_point(self):
        channel = InprocChannel("wlan")
        a = channel.join("a")
        channel.join("b")
        assert channel.send_to("a", b"uni")
        assert not channel.send_to("ghost", b"lost")
        assert a.take() == [b"uni"]
        assert channel.access_point.packets_sent == 1

    def test_close_marks_channel_receivers_eof(self):
        channel = InprocChannel("wlan")
        receiver = channel.join("a")
        channel.send(b"x")
        channel.close()
        assert receiver.recv(timeout=1.0) == b"x"
        assert receiver.recv(timeout=1.0) is None
        with pytest.raises(TransportError):
            channel.send(b"late")

    def test_duplicate_member_rejected(self):
        channel = InprocChannel("wlan")
        channel.join("a")
        with pytest.raises(TransportError):
            channel.join("a")


class TestInprocTransport:
    def test_channels_get_stable_derived_seeds(self):
        def packets(transport):
            channel = transport.open_channel("wlan")
            receiver = channel.join("m", distance_m=30.0)
            for i in range(100):
                channel.send(bytes([i % 256]))
            return receiver.take()

        assert packets(InprocTransport(seed=7)) == packets(InprocTransport(seed=7))
        assert packets(InprocTransport(seed=7)) != packets(InprocTransport(seed=8))

    def test_bound_wlan_is_shared_by_channels(self):
        wlan = WirelessLAN(seed=1)
        transport = InprocTransport(wlan=wlan)
        channel = transport.open_channel("wlan")
        assert channel.wlan is wlan

    def test_stream_service_is_reliable(self):
        transport = InprocTransport()
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=1.0)
        client.send(b"wired side")
        client.close_sending()
        assert server.recv(timeout=1.0) == b"wired side"
        assert server.recv(timeout=1.0) == b""
        transport.close()
