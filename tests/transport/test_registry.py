"""Registry, environment selection, and resolution for repro.transport."""

import pytest

from repro.transport import (
    TRANSPORT_ENV_VAR,
    InprocTransport,
    LoopbackTransport,
    Transport,
    TransportError,
    UdpTransport,
    available_transports,
    get_transport,
    register_transport,
    resolve_transport,
    set_default_transport,
)


class TestRegistry:
    def test_shipped_transports_are_registered(self):
        names = available_transports()
        assert {"inproc", "loopback", "udp"} <= set(names)

    def test_get_by_name_returns_fresh_instances(self):
        first = get_transport("loopback")
        second = get_transport("loopback")
        assert isinstance(first, LoopbackTransport)
        assert first is not second

    def test_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        assert isinstance(get_transport(), InprocTransport)

    def test_env_var_selects_transport(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "udp")
        transport = get_transport()
        assert isinstance(transport, UdpTransport)
        transport.close()

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(TransportError) as excinfo:
            get_transport("carrier-pigeon")
        assert "carrier-pigeon" in str(excinfo.value)
        assert "udp" in str(excinfo.value)

    def test_register_requires_name(self):
        with pytest.raises(TransportError):
            register_transport("", LoopbackTransport)

    def test_set_default_unknown_raises(self):
        with pytest.raises(TransportError):
            set_default_transport("nope")

    def test_set_default_round_trip(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        set_default_transport("loopback")
        try:
            assert isinstance(get_transport(), LoopbackTransport)
        finally:
            set_default_transport("inproc")


class TestResolve:
    def test_resolve_none_uses_default(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        assert isinstance(resolve_transport(None), InprocTransport)

    def test_resolve_instance_passes_through(self):
        transport = LoopbackTransport()
        assert resolve_transport(transport) is transport

    def test_resolve_name(self):
        assert isinstance(resolve_transport("loopback"), LoopbackTransport)

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TransportError):
            resolve_transport(42)


class TestProxyIntegration:
    def test_proxy_threads_transport_through(self):
        from repro.core import Proxy

        transport = LoopbackTransport()
        with Proxy("p", transport=transport) as proxy:
            assert proxy.transport is transport
            channel = proxy.open_channel("c")
            receiver = channel.join("m")
            channel.send(b"hello")
            assert receiver.take() == [b"hello"]
        # A shared instance is NOT closed by the proxy.
        channel2 = transport.open_channel("c2")
        channel2.send(b"still-open")
        transport.close()

    def test_proxy_owns_transport_resolved_from_name(self):
        from repro.core import Proxy

        proxy = Proxy("p", transport="loopback")
        channel = proxy.open_channel("c")
        proxy.shutdown()
        # The owned transport was closed with the proxy.
        assert channel.closed

    def test_control_thread_threads_transport_through(self):
        from repro.core import CollectorSink, IterableSource, null_proxy

        transport = LoopbackTransport()
        control = null_proxy(IterableSource([b"x"]), CollectorSink(),
                             transport=transport)
        assert control.transport is transport
        assert isinstance(control.transport, Transport)
        control.wait_for_completion(timeout=5.0)
        control.shutdown()
        transport.close()
