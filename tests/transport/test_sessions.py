"""Sessions over non-default transports (regression tests for review).

The pavilion and rapidware sessions advertise ``transport=``; these tests
pin the behaviours that were found broken in review: delivery over pull
transports (UDP), graceful degradation of the adaptation plane off the
simulated LAN, ``REPRO_TRANSPORT`` being honoured, and the channel-side
receiver queues not duplicating every delivered packet.
"""

from repro.media import AudioPacketizer, ToneSource
from repro.pavilion import CollaborativeSession
from repro.rapidware import AdaptiveAudioSession
from repro.transport import TRANSPORT_ENV_VAR, InprocChannel, UdpChannel


def _packets(duration_s=0.2):
    return AudioPacketizer(ToneSource(duration=duration_s),
                           packet_duration_ms=20).packet_list()


class TestPavilionOverTransports:
    def _browse_once(self, session):
        session.join("leader")
        session.join("mobile", wireless=True)
        try:
            session.browse("leader", "http://collab.example/page0.html")
            return session.delivery_summary()["mobile"]
        finally:
            session.shutdown()

    def test_wireless_delivery_over_loopback(self):
        summary = self._browse_once(CollaborativeSession(transport="loopback"))
        assert summary["pages"] == 1
        assert summary["over_air_bytes"] > 0

    def test_wireless_delivery_over_udp(self):
        """Pull transports must be drained, not just sent to (review #1)."""
        summary = self._browse_once(CollaborativeSession(transport="udp"))
        assert summary["pages"] == 1
        assert summary["over_air_bytes"] > 0

    def test_udp_matches_inproc_delivery(self):
        inproc = self._browse_once(CollaborativeSession(seed=3))
        udp = self._browse_once(CollaborativeSession(transport="udp", seed=3))
        assert udp["bytes"] == inproc["bytes"]

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "udp")
        session = CollaborativeSession()
        try:
            assert isinstance(session.channel, UdpChannel)
        finally:
            session.shutdown()
        monkeypatch.delenv(TRANSPORT_ENV_VAR)
        session = CollaborativeSession()
        try:
            assert isinstance(session.channel, InprocChannel)
        finally:
            session.shutdown()

    def test_wireless_receiver_queue_stays_empty(self):
        """Callback-only receivers must not hoard a copy of every page."""
        session = CollaborativeSession()
        session.join("leader")
        session.join("mobile", wireless=True)
        try:
            for _ in range(3):
                session.browse("leader", "http://collab.example/page0.html")
            receiver = session._wireless_receivers["mobile"]
            assert receiver.packets_received > 0
            assert receiver.pending() == 0
        finally:
            session.shutdown()


class TestAdaptiveSessionOverTransports:
    def test_stream_and_inert_adaptation_over_loopback(self):
        session = AdaptiveAudioSession(transport="loopback")
        try:
            packets = _packets()
            session.enqueue_packets(packets)
            session.observe(1.0)       # must be a no-op, not AttributeError
            session.move_receiver(40)  # likewise (review #2)
            session.finish(timeout=30.0)
            report = session.delivery_report()
            assert report.reconstructed_percent == 100.0
            assert not session.fec_active
        finally:
            session.shutdown()

    def test_stream_over_udp(self):
        session = AdaptiveAudioSession(transport="udp")
        try:
            packets = _packets()
            session.enqueue_packets(packets)
            session.finish(timeout=30.0)
            assert session.delivery_report().reconstructed_percent == 100.0
        finally:
            session.shutdown()

    def test_inproc_channel_queue_not_duplicated(self):
        """Capture goes through the wireless inbox; the channel-side queue
        must not keep a second copy of the stream (review #3)."""
        session = AdaptiveAudioSession(seed=7)
        try:
            session.enqueue_packets(_packets())
            session.finish(timeout=30.0)
            assert session.channel_receiver.pending() == 0
            assert session.channel_receiver.packets_received > 0
        finally:
            session.shutdown()

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "udp")
        session = AdaptiveAudioSession()
        try:
            assert isinstance(session.channel, UdpChannel)
            assert session.wlan is None
        finally:
            session.shutdown()
