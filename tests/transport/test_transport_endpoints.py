"""TransportSource / TransportSink anchoring proxied chains."""

import pytest

from repro.core import CollectorSink, IterableSource, Proxy
from repro.filters import UppercaseFilter
from repro.transport import (
    LoopbackTransport,
    TransportSink,
    TransportSource,
    UdpTransport,
    get_transport,
)

TRANSPORTS = ["inproc", "loopback", "udp"]
ENGINES = ["threaded", "event"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("transport_name", TRANSPORTS)
class TestTransportSource:
    def test_receiver_to_chain(self, transport_name, engine):
        transport = get_transport(transport_name)
        channel = transport.open_channel("in")
        receiver = channel.join("proxy")
        with Proxy("p", engine=engine) as proxy:
            source = TransportSource(receiver)
            sink = CollectorSink(expect_frames=True)
            control = proxy.add_stream(source, sink, name="s")
            control.add(UppercaseFilter())
            for i in range(10):
                channel.send(b"pkt-%d" % i)
            channel.close()
            assert control.wait_for_completion(timeout=10.0), (
                transport_name, engine)
        assert sink.items() == [b"PKT-%d" % i for i in range(10)]
        transport.close()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("transport_name", TRANSPORTS)
class TestTransportSink:
    def test_chain_to_channel_with_eof_propagation(self, transport_name,
                                                   engine):
        transport = get_transport(transport_name)
        channel = transport.open_channel("out")
        listener = channel.join("listener")
        with Proxy("p", engine=engine) as proxy:
            source = IterableSource([b"a", b"b", b"c"], frame_output=True)
            sink = TransportSink(channel)
            control = proxy.add_stream(source, sink, name="s")
            assert control.wait_for_completion(timeout=10.0)
        got = []
        while True:
            payload = listener.recv(timeout=5.0)
            if payload is None:
                break
            got.append(payload)
        assert got == [b"a", b"b", b"c"]
        assert listener.at_eof()  # the chain's EOF closed the channel
        transport.close()


class TestEndpointBehaviour:
    def test_sink_can_leave_channel_open(self):
        transport = LoopbackTransport()
        channel = transport.open_channel("shared")
        listener = channel.join("listener")
        with Proxy("p") as proxy:
            source = IterableSource([b"x"], frame_output=True)
            sink = TransportSink(channel, close_channel_on_eof=False)
            control = proxy.add_stream(source, sink, name="s")
            assert control.wait_for_completion(timeout=5.0)
        assert not channel.closed
        assert listener.take() == [b"x"]
        transport.close()

    def test_source_stop_mid_stream(self):
        transport = LoopbackTransport()
        channel = transport.open_channel("in")
        receiver = channel.join("proxy")
        with Proxy("p") as proxy:
            source = TransportSource(receiver)
            sink = CollectorSink(expect_frames=True)
            proxy.add_stream(source, sink, name="s")
            channel.send(b"one")
        # Proxy shutdown with the channel still open: the source must have
        # stopped promptly rather than waiting for channel EOF.
        assert source.finished
        transport.close()

    def test_invalid_poll_interval_rejected(self):
        transport = LoopbackTransport()
        receiver = transport.open_channel("c").join("m")
        with pytest.raises(ValueError):
            TransportSource(receiver, poll_interval_s=0)
        transport.close()

    def test_udp_sources_share_one_scheduler_thread(self):
        """The selector integration: N UDP streams, no per-socket threads."""
        import threading

        transport = UdpTransport()
        channels = []
        sinks = []
        baseline = threading.active_count()
        with Proxy("p", engine="event") as proxy:
            for i in range(8):
                channel = transport.open_channel(f"c{i}")
                receiver = channel.join("m")
                sink = CollectorSink(expect_frames=True)
                proxy.add_stream(TransportSource(receiver), sink,
                                 name=f"s{i}")
                channels.append(channel)
                sinks.append(sink)
            # 8 UDP streams added exactly one scheduler thread.
            assert threading.active_count() == baseline + 1
            for channel in channels:
                channel.send(b"data")
                channel.close()
            for name, control in proxy.streams.items():
                assert control.wait_for_completion(timeout=10.0), name
        for sink in sinks:
            assert sink.items() == [b"data"]
        transport.close()
