"""The UDP transport: real sockets, framing, EOS, cross-process address use."""

import socket
import threading

import pytest

from repro.streams import FRAME_MAGIC
from repro.transport import (
    EOS_DATAGRAM,
    MAX_DATAGRAM_PAYLOAD,
    TransportError,
    TransportTimeoutError,
    UdpTransport,
    decode_datagram,
    encode_datagram,
)


@pytest.fixture
def transport():
    t = UdpTransport()
    yield t
    t.close()


class TestFraming:
    def test_round_trip(self):
        wire = encode_datagram(b"payload")
        assert wire[0] == FRAME_MAGIC
        assert decode_datagram(wire) == b"payload"

    def test_eos_marker_decodes_to_none(self):
        assert decode_datagram(EOS_DATAGRAM) is None

    def test_oversized_payload_rejected(self):
        with pytest.raises(TransportError):
            encode_datagram(b"x" * (MAX_DATAGRAM_PAYLOAD + 1))

    def test_bad_magic_rejected(self):
        with pytest.raises(TransportError):
            decode_datagram(b"\x00\x00\x00\x00\x07payload")

    def test_truncated_datagram_rejected(self):
        wire = encode_datagram(b"payload")
        with pytest.raises(TransportError):
            decode_datagram(wire[:-2])
        with pytest.raises(TransportError):
            decode_datagram(wire[:3])


class TestUdpChannel:
    def test_unicast_fanout_multicast(self, transport):
        channel = transport.open_channel("c")
        a = channel.join("a")
        b = channel.join("b")
        assert channel.send(b"hello") == 2
        assert a.recv(timeout=2.0) == b"hello"
        assert b.recv(timeout=2.0) == b"hello"

    def test_send_to_single_member(self, transport):
        channel = transport.open_channel("c")
        a = channel.join("a")
        b = channel.join("b")
        assert channel.send_to("a", b"solo")
        assert not channel.send_to("ghost", b"lost")
        assert a.recv(timeout=2.0) == b"solo"
        assert b.pending() == 0

    def test_close_sends_eos_and_marks_local_receivers(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        channel.send(b"one")
        channel.close()
        # Data queued before close still drains, then EOF.
        assert receiver.recv(timeout=2.0) == b"one"
        assert receiver.recv(timeout=2.0) is None
        assert receiver.at_eof()

    def test_remote_member_by_address(self, transport):
        """The cross-process pattern: receiver binds, sender adds by address."""
        receiver_side = UdpTransport()
        receiver_channel = receiver_side.open_channel("c")
        receiver = receiver_channel.join("me")
        try:
            sender_channel = transport.open_channel("c")
            sender_channel.add_member("remote", receiver.address)
            assert sender_channel.send(b"over the wire") == 1
            assert receiver.recv(timeout=2.0) == b"over the wire"
            sender_channel.close()  # EOS datagram crosses the "process" gap
            assert receiver.recv(timeout=2.0) is None
        finally:
            receiver_side.close()

    def test_foreign_datagrams_are_counted_and_dropped(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        noise = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            noise.sendto(b"not a frame", receiver.address)
            channel.send(b"good")
            assert receiver.recv(timeout=2.0) == b"good"
            assert receiver.framing_errors == 1
        finally:
            noise.close()

    def test_receiver_is_selectable(self, transport):
        receiver = transport.open_channel("c").join("a")
        assert isinstance(receiver.selectable_fileno(), int)

    def test_recv_timeout(self, transport):
        receiver = transport.open_channel("c").join("a")
        with pytest.raises(TransportTimeoutError):
            receiver.recv(timeout=0.05)

    def test_blocking_recv_wakes_on_datagram(self, transport):
        channel = transport.open_channel("c")
        receiver = channel.join("a")
        got = []
        thread = threading.Thread(
            target=lambda: got.append(receiver.recv(timeout=5.0)))
        thread.start()
        channel.send(b"wake")
        thread.join(timeout=5.0)
        assert got == [b"wake"]

    def test_duplicate_member_rejected(self, transport):
        channel = transport.open_channel("c")
        channel.join("a")
        with pytest.raises(TransportError):
            channel.join("a")


class TestIpMulticast:
    def test_send_to_refused_in_multicast_mode(self):
        """Members share the group port, so unicast would mis-deliver."""
        transport = UdpTransport()
        try:
            channel = transport.open_channel(
                "mc-unicast", multicast_group=("239.255.42.98", 48764))
            with pytest.raises(TransportError):
                channel.send_to("anyone", b"data")
        finally:
            transport.close()

    def test_group_delivery_when_routable(self):
        """Real IP multicast; environments without multicast routing skip."""
        transport = UdpTransport()
        try:
            try:
                channel = transport.open_channel(
                    "mc", multicast_group=("239.255.42.99", 0))
                # Rebind with the port the OS actually picked is not possible
                # for group sockets, so choose a fixed high port instead.
            except OSError:
                pytest.skip("IP multicast unavailable")
            channel.close()
            channel = transport.open_channel(
                "mc2", multicast_group=("239.255.42.99", 48765))
            try:
                a = channel.join("a")
                b = channel.join("b")
                channel.send(b"group")
                assert a.recv(timeout=2.0) == b"group"
                assert b.recv(timeout=2.0) == b"group"
            except (OSError, TransportTimeoutError):
                pytest.skip("IP multicast not routable on this host")
        finally:
            transport.close()


class TestTcpStreams:
    def test_listen_connect_round_trip(self, transport):
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        client.send(b"stream bytes")
        client.close_sending()
        received = bytearray()
        while True:
            chunk = server.recv(timeout=2.0)
            if not chunk:
                break
            received.extend(chunk)
        assert bytes(received) == b"stream bytes"
        client.close()
        server.close()

    def test_connect_refused_raises(self, transport):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(TransportError):
            transport.connect(("127.0.0.1", port))

    def test_accept_timeout(self, transport):
        listener = transport.listen()
        with pytest.raises(TransportTimeoutError):
            listener.accept(timeout=0.05)
