"""Vectored receive (recvmmsg): batching, fallback, kill switch."""

import errno
import socket

import pytest

from repro.transport import UdpTransport, encode_datagram
from repro.transport import vectored


@pytest.fixture
def transport():
    t = UdpTransport()
    yield t
    t.close()


def _blast(port, payloads):
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        for payload in payloads:
            sender.sendto(encode_datagram(payload), ("127.0.0.1", port))
    finally:
        sender.close()


class TestRecvBatch:
    @pytest.mark.skipif(not vectored.recv_available(),
                        reason="recvmmsg not available on this host")
    def test_batch_drains_many_datagrams_per_call(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        sock.setblocking(False)
        port = sock.getsockname()[1]
        _blast(port, [b"m-%03d" % i for i in range(10)])
        import time

        time.sleep(0.05)
        ring = [bytearray(2048) for _ in range(16)]
        lengths, error = vectored.recv_batch(sock, ring)
        assert error is None
        assert len(lengths) == 10
        for i, nbytes in enumerate(lengths):
            assert bytes(ring[i][:nbytes]) == encode_datagram(b"m-%03d" % i)
        # The queue is drained: the next call reports no data, no error.
        lengths, error = vectored.recv_batch(sock, ring)
        assert (lengths, error) == ([], None)
        sock.close()

    @pytest.mark.skipif(not vectored.recv_available(),
                        reason="recvmmsg not available on this host")
    def test_empty_buffer_list_is_a_noop(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        assert vectored.recv_batch(sock, []) == ([], None)
        sock.close()


class TestReceiverIntegration:
    def test_receiver_drains_batches_end_to_end(self, transport):
        channel = transport.open_channel("vr-chan")
        receiver = channel.join("member", address=("127.0.0.1", 0))
        payloads = [b"payload-%03d" % i for i in range(40)]
        _blast(receiver.address[1], payloads)
        import time

        deadline = time.monotonic() + 5.0
        got = []
        while len(got) < len(payloads) and time.monotonic() < deadline:
            got.extend(receiver.take())
            time.sleep(0.01)
        assert got == payloads

    def test_kill_switch_disables_vectored_receive(self, transport,
                                                   monkeypatch):
        monkeypatch.setenv(vectored.VECTORED_ENV_VAR, "0")
        assert not vectored.recv_available()
        channel = transport.open_channel("kill-chan")
        receiver = channel.join("member", address=("127.0.0.1", 0))
        assert receiver._vectored_recv is False
        # The scalar path still delivers everything.
        payloads = [b"scalar-%d" % i for i in range(12)]
        _blast(receiver.address[1], payloads)
        import time

        deadline = time.monotonic() + 5.0
        got = []
        while len(got) < len(payloads) and time.monotonic() < deadline:
            got.extend(receiver.take())
            time.sleep(0.01)
        assert got == payloads

    def test_disable_errno_falls_back_permanently(self, transport,
                                                  monkeypatch):
        channel = transport.open_channel("fallback-chan")
        receiver = channel.join("member", address=("127.0.0.1", 0))
        if not receiver._vectored_recv:
            pytest.skip("vectored receive not active on this host")

        def broken_recv_batch(sock, buffers):
            err = errno.ENOSYS
            import os

            return [], OSError(err, os.strerror(err))

        monkeypatch.setattr(vectored, "recv_batch", broken_recv_batch)
        payloads = [b"fb-%d" % i for i in range(5)]
        _blast(receiver.address[1], payloads)
        import time

        deadline = time.monotonic() + 5.0
        got = []
        while len(got) < len(payloads) and time.monotonic() < deadline:
            got.extend(receiver.take())
            time.sleep(0.01)
        # Data still arrives via the scalar loop, and the vectored path is
        # switched off permanently (not retried per drain).
        assert got == payloads
        assert receiver._vectored_recv is False

    def test_framing_errors_still_counted_on_batch_path(self, transport):
        channel = transport.open_channel("err-chan")
        receiver = channel.join("member", address=("127.0.0.1", 0))
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sender.sendto(b"\xffgarbage", ("127.0.0.1", receiver.address[1]))
        sender.sendto(encode_datagram(b"good"), ("127.0.0.1",
                                                 receiver.address[1]))
        sender.close()
        import time

        deadline = time.monotonic() + 5.0
        got = []
        while not got and time.monotonic() < deadline:
            got.extend(receiver.take())
            time.sleep(0.01)
        assert got == [b"good"]
        assert receiver.framing_errors == 1
