"""Transport equivalence: the FEC-audio round trip is byte-identical.

The acceptance bar for the transport layer: the same audio stream, FEC(6,4)
encoded by the same proxy chain, delivered over the *simulated* wireless
LAN (inproc, lossless), the in-memory loopback transport, and real UDP
sockets on the loopback interface, must hand every receiver the same
payload bytes in the same order — under both execution engines.  The
transport can change where packets travel, never what arrives.
"""

import pytest

import repro.core.filter as core_filter
from repro.media import AudioPacketizer, ToneSource
from repro.proxies import FecAudioProxyConfig, FecAudioProxy, WirelessAudioReceiver
from repro.transport import get_transport

TRANSPORTS = ["inproc", "loopback", "udp"]
ENGINES = ["threaded", "event", "asyncio"]


def _audio_packets():
    source = ToneSource(duration=0.5)  # 25 packets of 20 ms
    return AudioPacketizer(source, packet_duration_ms=20).packet_list()


def _round_trip(transport_name: str, engine: str, packets):
    """One full proxy run; returns (captured payloads, reconstructed PCM)."""
    transport = get_transport(transport_name)
    try:
        channel = transport.open_channel("wlan")
        receiver = channel.join("mobile-host")  # lossless on every transport
        # Pin the group-id base: every run must be byte-identical on the
        # wire, not just at the media level.
        config = FecAudioProxyConfig(engine=engine, fec_enabled=True,
                                     fec_start_group_id=0)
        proxy = FecAudioProxy(packets, channel=channel, config=config)
        proxy.start()
        assert proxy.wait_for_completion(timeout=60.0), (transport_name, engine)
        proxy.shutdown()

        captured = []
        while True:
            payload = receiver.recv(timeout=10.0)
            if payload is None:
                break
            captured.append(bytes(payload))

        audio = WirelessAudioReceiver("mobile-host")
        audio.process(captured)
        audio.finish()
        pcm = audio.reconstructed_pcm(len(packets))
        report = audio.delivery_report(len(packets))
        assert report.reconstructed_percent == 100.0, (transport_name, engine)
        return captured, pcm
    finally:
        transport.close()


def test_fec_audio_round_trip_is_transport_invariant():
    packets = _audio_packets()
    reference_wire = None
    reference_pcm = None
    reference_label = None
    for engine in ENGINES:
        for transport_name in TRANSPORTS:
            wire, pcm = _round_trip(transport_name, engine, packets)
            label = f"{transport_name}/{engine}"
            if reference_wire is None:
                reference_wire, reference_pcm = wire, pcm
                reference_label = label
                continue
            # Byte-identical on-air payloads, in order…
            assert wire == reference_wire, (label, reference_label)
            # …and byte-identical reconstructed audio.
            assert pcm == reference_pcm, (label, reference_label)
    # Sanity: the stream actually carried the tone.
    assert reference_pcm and any(b != 0 for b in reference_pcm)


@pytest.mark.parametrize("engine", ENGINES)
def test_round_trip_is_invariant_under_pump_budget(engine, monkeypatch):
    """Multi-chunk batching is a throughput optimisation, not a semantic
    one: the wire payloads and the reconstructed PCM must be identical
    whether filters move one chunk per pump step or a whole budget."""
    packets = _audio_packets()
    wire_batched, pcm_batched = _round_trip("loopback", engine, packets)
    monkeypatch.setattr(core_filter, "DEFAULT_PUMP_BUDGET", 1)
    wire_unbatched, pcm_unbatched = _round_trip("loopback", engine, packets)
    assert wire_unbatched == wire_batched
    assert pcm_unbatched == pcm_batched


@pytest.mark.parametrize("transport_name", TRANSPORTS)
def test_unprotected_stream_is_also_invariant(transport_name):
    """Without FEC the raw media packets themselves cross unchanged."""
    packets = _audio_packets()[:10]
    transport = get_transport(transport_name)
    try:
        channel = transport.open_channel("wlan")
        receiver = channel.join("mobile-host")
        config = FecAudioProxyConfig(fec_enabled=False)
        proxy = FecAudioProxy(packets, channel=channel, config=config)
        proxy.start()
        assert proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        captured = []
        while True:
            payload = receiver.recv(timeout=10.0)
            if payload is None:
                break
            captured.append(bytes(payload))
        assert captured == [p.pack() for p in packets]
    finally:
        transport.close()
