"""EventEngine selector integration: sockets in the dirty-set loop."""

import time

from repro.core import CollectorSink, ControlThread
from repro.runtime import EventEngine
from repro.transport import TransportSource, UdpTransport


def test_selector_is_lazy():
    """Purely in-process proxies never pay for a selector or self-pipe."""
    from repro.core import IterableSource

    engine = EventEngine()
    control = ControlThread(IterableSource([b"x"]), CollectorSink(),
                            engine=engine)
    assert control.wait_for_completion(timeout=5.0)
    assert engine._selector is None
    control.shutdown()


def test_readable_socket_wakes_idle_scheduler_without_heartbeat():
    """A datagram arriving while the scheduler sleeps must be dispatched by
    the selector, well inside the heartbeat interval."""
    # A heartbeat long enough that falling back to it would fail the test.
    engine = EventEngine(heartbeat_s=30.0)
    transport = UdpTransport()
    try:
        channel = transport.open_channel("c")
        receiver = channel.join("m")
        source = TransportSource(receiver)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, engine=engine)
        assert engine._selector is not None  # the fd is registered
        time.sleep(0.2)  # let the scheduler go idle (into select)
        start = time.monotonic()
        channel.send(b"wake")
        deadline = start + 5.0
        while time.monotonic() < deadline and not sink.items():
            time.sleep(0.005)
        latency = time.monotonic() - start
        assert sink.items() == [b"wake"]
        assert latency < 5.0  # far below the 30 s heartbeat
        channel.close()
        assert control.wait_for_completion(timeout=10.0)
        control.shutdown()
    finally:
        transport.close()


def test_held_selectable_fd_is_suspended_not_spun_on():
    """A held source with a readable socket must come off the selector
    (otherwise every idle select() returns instantly — a busy spin) and go
    back on when the hold is released."""
    engine = EventEngine()
    transport = UdpTransport()
    try:
        channel = transport.open_channel("c")
        receiver = channel.join("m")
        source = TransportSource(receiver)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, engine=engine)
        channel.send(b"first")
        # Arm a hold: the very next unit parks the source mid-emit.
        assert source.hold_at_boundary(timeout=5.0)
        channel.send(b"second")  # readable fd while held
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and source not in engine._suspended:
            time.sleep(0.005)
        assert source in engine._suspended
        source.release_hold()
        channel.send(b"third")
        channel.close()
        assert control.wait_for_completion(timeout=10.0)
        assert sink.items() == [b"first", b"second", b"third"]
        assert source not in engine._suspended
        control.shutdown()
    finally:
        transport.close()


def test_finished_elements_are_unregistered():
    engine = EventEngine()
    transport = UdpTransport()
    try:
        channel = transport.open_channel("c")
        receiver = channel.join("m")
        source = TransportSource(receiver)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, engine=engine)
        channel.send(b"only")
        channel.close()
        assert control.wait_for_completion(timeout=10.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and engine._selectable_fds:
            time.sleep(0.01)
        assert not engine._selectable_fds
        control.shutdown()
    finally:
        transport.close()


def test_shutdown_releases_selector_resources():
    engine = EventEngine()
    transport = UdpTransport()
    try:
        channel = transport.open_channel("c")
        receiver = channel.join("m")
        control = ControlThread(TransportSource(receiver),
                                CollectorSink(expect_frames=True),
                                engine=engine)
        channel.close()
        control.wait_for_completion(timeout=10.0)
        control.shutdown()
        engine.shutdown(timeout=5.0)  # the instance is ours, not the control's
        assert engine._selector is None
        assert engine._wakeup_send is None and engine._wakeup_recv is None
    finally:
        transport.close()
