"""Unit tests for the event-driven engine's cooperative execution."""

import threading
import time

import pytest

from repro.core import (
    CollectorSink,
    ControlThread,
    Filter,
    IterableSource,
    NullSink,
    Proxy,
)
from repro.filters import PassthroughFilter, UppercaseFilter
from repro.runtime import EngineError, EventEngine


@pytest.fixture
def engine():
    eng = EventEngine()
    yield eng
    eng.shutdown()


def make_chunks(count, prefix="chunk"):
    return [f"{prefix}-{i:04d};".encode() for i in range(count)]


class TestCooperativeExecution:
    def test_null_proxy_round_trip(self, engine):
        chunks = make_chunks(100)
        source = IterableSource(list(chunks))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        assert control.wait_for_completion(timeout=10.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_filters_share_one_scheduler_thread(self, engine):
        chunks = make_chunks(50)
        before = threading.active_count()
        source = IterableSource(list(chunks), pacing_s=0.001)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        for i in range(4):
            control.add(PassthroughFilter(name=f"f{i}"))
        # One source thread + one scheduler, however many filters: strictly
        # fewer threads than thread-per-filter's 4 filters + 2 endpoints.
        assert threading.active_count() - before <= 3
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_filter_is_running_and_finishes(self, engine):
        source = IterableSource(make_chunks(20), pacing_s=0.002)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        f = PassthroughFilter(name="coop")
        control.add(f)
        assert f.running
        assert f.cooperative
        assert control.wait_for_completion(timeout=10.0)
        assert f.wait_finished(timeout=5.0)
        assert not f.running
        control.shutdown()

    def test_transform_error_is_recorded_and_eof_propagates(self, engine):
        class Exploding(Filter):
            type_name = "exploding"

            def transform(self, chunk):
                raise RuntimeError("boom")

        source = IterableSource(make_chunks(5))
        sink = CollectorSink()
        control = ControlThread(source, sink, auto_start=False, engine=engine)
        bad = Exploding(name="bad")
        control.add(bad)
        control.start()
        assert bad.wait_finished(timeout=5.0)
        assert isinstance(bad.error, RuntimeError)
        # Downstream saw EOF rather than hanging.
        assert control.wait_for_completion(timeout=5.0)
        control.shutdown()

    def test_stop_element_mid_stream(self, engine):
        source = IterableSource(make_chunks(5000), pacing_s=0.001)
        sink = NullSink()
        control = ControlThread(source, sink, engine=engine)
        f = PassthroughFilter(name="stoppee")
        control.add(f)
        time.sleep(0.05)
        f.stop(timeout=5.0)
        assert f.finished
        assert not f.running
        control.shutdown()

    def test_dynamic_insert_and_remove_loses_nothing(self, engine):
        chunks = make_chunks(400)
        source = IterableSource(list(chunks), pacing_s=0.0005)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        for _ in range(3):
            time.sleep(0.02)
            control.add(UppercaseFilter(name="tmp"))
            time.sleep(0.02)
            control.remove("tmp")
        assert control.wait_for_completion(timeout=30.0)
        data = sink.data()
        assert len(data) == len(b"".join(chunks))
        assert data.lower() == b"".join(chunks).lower()
        control.shutdown()

    def test_boundary_hold_parks_without_blocking_scheduler(self, engine):
        # Two independent streams on one engine: while stream A is held at a
        # boundary, stream B must keep flowing (the scheduler is not blocked).
        src_a = IterableSource(make_chunks(2000, "a"), pacing_s=0.0005)
        sink_a = CollectorSink()
        control_a = ControlThread(src_a, sink_a, name="a", engine=engine)
        held = PassthroughFilter(name="holdme")
        control_a.add(held)

        src_b = IterableSource(make_chunks(200, "b"), pacing_s=0.0005)
        sink_b = CollectorSink()
        control_b = ControlThread(src_b, sink_b, name="b", engine=engine)

        assert held.hold_at_boundary(timeout=5.0)
        assert held.held
        flowing_before = sink_b.data()
        time.sleep(0.1)
        assert len(sink_b.data()) > len(flowing_before)  # B kept moving
        held.release_hold()
        assert control_a.wait_for_completion(timeout=20.0)
        assert control_b.wait_for_completion(timeout=20.0)
        assert sink_a.data() == b"".join(make_chunks(2000, "a"))
        control_a.shutdown()
        control_b.shutdown()

    def test_backpressure_gates_pumping_but_stream_completes(self):
        from repro.streams import DetachableInputStream

        engine = EventEngine(heartbeat_s=0.05)
        # A tiny downstream buffer forces the high-water gate to engage.
        payload = [bytes([i % 256]) * 4096 for i in range(64)]
        source = IterableSource(list(payload))
        sink = CollectorSink()
        sink.set_dis(DetachableInputStream(name="tiny", capacity=1024))
        control = ControlThread(source, sink, auto_start=False, engine=engine)
        control.add(PassthroughFilter(name="narrow"))
        control.start()
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(payload)
        control.shutdown()
        engine.shutdown()


class TestEngineLifecycle:
    def test_shutdown_stops_scheduler(self):
        engine = EventEngine()
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        control.wait_for_completion(timeout=5.0)
        control.shutdown()
        engine.shutdown()
        assert not engine.scheduler_alive

    def test_start_after_shutdown_raises(self):
        engine = EventEngine()
        engine.shutdown()
        with pytest.raises(EngineError):
            engine.start_element(PassthroughFilter())

    def test_finished_elements_are_deregistered(self, engine):
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        assert control.wait_for_completion(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while engine.managed_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert engine.managed_count == 0
        control.shutdown()

    def test_proxy_owns_engine_resolved_from_name(self):
        proxy = Proxy("owner", engine="event")
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = proxy.add_stream(source, sink, name="s")
        assert control.wait_for_completion(timeout=5.0)
        proxy.shutdown()
        assert not proxy.engine.scheduler_alive

    def test_shared_engine_survives_proxy_shutdown(self, engine):
        proxy = Proxy("borrower", engine=engine)
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        proxy.add_stream(source, sink, name="s").wait_for_completion(timeout=5.0)
        proxy.shutdown()
        # The engine was passed in as an instance, so the proxy must not
        # have shut it down: it can still run new elements.
        source2 = IterableSource(make_chunks(10))
        sink2 = CollectorSink()
        control2 = ControlThread(source2, sink2, engine=engine)
        assert control2.wait_for_completion(timeout=5.0)
        control2.shutdown()
