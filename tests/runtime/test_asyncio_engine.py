"""Unit tests for the asyncio engine's cooperative execution.

The cross-engine byte-equivalence checks live in
``test_engine_equivalence.py``; these tests cover what is specific to
the asyncio adapter — the lazily started loop thread, timer pacing,
metrics, loop exposure, and shutdown semantics.
"""

import threading
import time

import pytest

from repro.core import (
    CollectorSink,
    ControlThread,
    Filter,
    IterableSource,
    NullSink,
    Proxy,
)
from repro.filters import PassthroughFilter, UppercaseFilter
from repro.runtime import AsyncioEngine, EngineError, get_engine, resolve_engine


@pytest.fixture
def engine():
    eng = AsyncioEngine()
    yield eng
    eng.shutdown()


def make_chunks(count, prefix="chunk"):
    return [f"{prefix}-{i:04d};".encode() for i in range(count)]


class TestRegistry:
    def test_registered_under_asyncio_name(self):
        engine = get_engine("asyncio")
        try:
            assert isinstance(engine, AsyncioEngine)
            assert engine.name == "asyncio"
        finally:
            engine.shutdown()

    def test_env_var_selects_asyncio(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "asyncio")
        engine = resolve_engine(None)
        try:
            assert isinstance(engine, AsyncioEngine)
        finally:
            engine.shutdown()


class TestCooperativeExecution:
    def test_null_proxy_round_trip(self, engine):
        chunks = make_chunks(100)
        source = IterableSource(list(chunks))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        assert control.wait_for_completion(timeout=10.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_loop_thread_is_lazy(self):
        engine = AsyncioEngine()
        try:
            assert not engine.scheduler_alive
            assert engine.loop is None
            source = IterableSource(make_chunks(10))
            sink = CollectorSink()
            # Starting the endpoints is what must spin the loop up: no
            # mid-stream insert here, the stream may already be done by then.
            control = ControlThread(source, sink, engine=engine)
            assert engine.scheduler_alive
            assert engine.loop is not None
            assert control.wait_for_completion(timeout=10.0)
            control.shutdown()
        finally:
            engine.shutdown()

    def test_filters_share_one_loop_thread(self, engine):
        chunks = make_chunks(50)
        before = threading.active_count()
        source = IterableSource(list(chunks), pacing_s=0.001)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        for i in range(4):
            control.add(PassthroughFilter(name=f"f{i}"))
        # One source thread + one loop thread, however many filters.
        assert threading.active_count() - before <= 3
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_transform_error_is_recorded_and_eof_propagates(self, engine):
        class Exploding(Filter):
            type_name = "exploding"

            def transform(self, chunk):
                raise RuntimeError("boom")

        source = IterableSource(make_chunks(5))
        sink = CollectorSink()
        control = ControlThread(source, sink, auto_start=False, engine=engine)
        bad = Exploding(name="bad")
        control.add(bad)
        control.start()
        assert bad.wait_finished(timeout=5.0)
        assert isinstance(bad.error, RuntimeError)
        assert control.wait_for_completion(timeout=5.0)
        control.shutdown()

    def test_stop_element_mid_stream(self, engine):
        source = IterableSource(make_chunks(5000), pacing_s=0.001)
        sink = NullSink()
        control = ControlThread(source, sink, engine=engine)
        f = PassthroughFilter(name="stoppee")
        control.add(f)
        time.sleep(0.05)
        f.stop(timeout=5.0)
        assert f.finished
        assert not f.running
        control.shutdown()

    def test_dynamic_insert_and_remove_loses_nothing(self, engine):
        chunks = make_chunks(400)
        source = IterableSource(list(chunks), pacing_s=0.0005)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        for _ in range(3):
            time.sleep(0.02)
            control.add(UppercaseFilter(name="tmp"))
            time.sleep(0.02)
            control.remove("tmp")
        assert control.wait_for_completion(timeout=30.0)
        data = sink.data()
        assert len(data) == len(b"".join(chunks))
        assert data.lower() == b"".join(chunks).lower()
        control.shutdown()

    def test_paced_source_uses_timers_not_spinning(self, engine):
        # A paced cooperative source reports next_due_s; the engine must
        # park it on a loop timer instead of spinning the scheduler.
        chunks = make_chunks(20)
        source = IterableSource(list(chunks), pacing_s=0.01)
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        control.add(PassthroughFilter(name="f"))
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        snap = engine.metrics_snapshot()
        assert snap["counters"]["timer_fires"] > 0
        # Rounds should be modest: not thousands of spin iterations.
        assert snap["counters"]["scheduler_rounds"] < 2000
        control.shutdown()

    def test_backpressure_gates_pumping_but_stream_completes(self):
        from repro.streams import DetachableInputStream

        engine = AsyncioEngine(heartbeat_s=0.05)
        payload = [bytes([i % 256]) * 4096 for i in range(64)]
        source = IterableSource(list(payload))
        sink = CollectorSink()
        sink.set_dis(DetachableInputStream(name="tiny", capacity=1024))
        control = ControlThread(source, sink, auto_start=False, engine=engine)
        control.add(PassthroughFilter(name="narrow"))
        control.start()
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(payload)
        control.shutdown()
        engine.shutdown()

    def test_two_streams_share_one_loop(self, engine):
        sinks = []
        controls = []
        for i in range(2):
            source = IterableSource(make_chunks(100, f"s{i}"), pacing_s=0.0005)
            sink = CollectorSink()
            control = ControlThread(source, sink, name=f"s{i}", engine=engine)
            control.add(PassthroughFilter(name=f"p{i}"))
            sinks.append(sink)
            controls.append(control)
        for i, control in enumerate(controls):
            assert control.wait_for_completion(timeout=20.0)
            assert sinks[i].data() == b"".join(make_chunks(100, f"s{i}"))
            control.shutdown()


class TestEngineLifecycle:
    def test_shutdown_stops_loop(self):
        engine = AsyncioEngine()
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        control.add(PassthroughFilter(name="f"))
        control.wait_for_completion(timeout=5.0)
        control.shutdown()
        engine.shutdown()
        assert not engine.scheduler_alive

    def test_shutdown_is_idempotent(self):
        engine = AsyncioEngine()
        engine.shutdown()
        engine.shutdown()
        assert not engine.scheduler_alive

    def test_start_after_shutdown_raises(self):
        engine = AsyncioEngine()
        engine.shutdown()
        with pytest.raises(EngineError):
            engine.start_element(PassthroughFilter())

    def test_finished_elements_are_deregistered(self, engine):
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        f = PassthroughFilter(name="f")
        control.add(f)
        assert control.wait_for_completion(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while engine.managed_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert engine.managed_count == 0
        control.shutdown()

    def test_proxy_owns_engine_resolved_from_name(self):
        proxy = Proxy("owner", engine="asyncio")
        source = IterableSource(make_chunks(10))
        sink = CollectorSink()
        control = proxy.add_stream(source, sink, name="s")
        control.add(PassthroughFilter(name="f"))
        assert control.wait_for_completion(timeout=5.0)
        proxy.shutdown()
        assert not proxy.engine.scheduler_alive

    def test_metrics_snapshot_shape(self, engine):
        source = IterableSource(make_chunks(50))
        sink = CollectorSink()
        control = ControlThread(source, sink, engine=engine)
        control.add(PassthroughFilter(name="f"))
        assert control.wait_for_completion(timeout=10.0)
        snap = engine.metrics_snapshot()
        for counter in ("scheduler_rounds", "elements_pumped", "timer_fires",
                        "selector_wakeups", "scan_all_rounds"):
            assert counter in snap["counters"]
        for gauge in ("dirty_depth", "gated_depth", "managed_elements",
                      "pending_timers"):
            assert gauge in snap["gauges"]
        assert snap["counters"]["elements_pumped"] > 0
        control.shutdown()
