"""Unit tests for the execution-engine registry and selection rules."""

import pytest

from repro.runtime import (
    ENGINE_ENV_VAR,
    EngineError,
    EventEngine,
    ExecutionEngine,
    ThreadedEngine,
    available_engines,
    get_engine,
    resolve_engine,
)


class TestRegistry:
    def test_both_engines_registered(self):
        assert "threaded" in available_engines()
        assert "event" in available_engines()

    def test_default_is_threaded(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(get_engine(), ThreadedEngine)

    def test_get_by_name(self):
        assert isinstance(get_engine("threaded"), ThreadedEngine)
        assert isinstance(get_engine("event"), EventEngine)

    def test_each_call_returns_fresh_instance(self):
        assert get_engine("event") is not get_engine("event")

    def test_unknown_name_raises(self):
        with pytest.raises(EngineError):
            get_engine("fibers")

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "event")
        assert isinstance(get_engine(), EventEngine)

    def test_env_var_typo_raises(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "evnet")
        with pytest.raises(EngineError):
            get_engine()


class TestResolve:
    def test_resolve_none_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(resolve_engine(None), ExecutionEngine)

    def test_resolve_instance_passes_through(self):
        engine = EventEngine()
        assert resolve_engine(engine) is engine
        engine.shutdown()

    def test_resolve_name(self):
        assert isinstance(resolve_engine("threaded"), ThreadedEngine)

    def test_resolve_garbage_raises(self):
        with pytest.raises(EngineError):
            resolve_engine(42)
