"""Engine equivalence: ThreadedEngine, EventEngine and AsyncioEngine must
be byte-identical on the integration scenarios.

Each scenario is run once per engine and the sink outputs compared — the
execution runtime must be invisible in the data plane, exactly as the GF
backends are equivalence-tested against the pure-Python oracle.
"""

import time

import pytest

from repro.core import CollectorSink, ControlThread, IterableSource
from repro.core.boundary import i_frame_boundary
from repro.filters import (
    FecDecoderFilter,
    FecEncoderFilter,
    PacketPassthroughFilter,
)
from repro.media import AudioPacketizer, ToneSource, VideoSource
from repro.runtime import get_engine

ENGINES = ["threaded", "event", "asyncio"]


def run_fec_audio_round_trip(engine_name):
    """FEC encode -> decode across one proxied stream; returns sink packets."""
    engine = get_engine(engine_name)
    packets = AudioPacketizer(ToneSource(duration=1.0)).packet_list()
    source = IterableSource([p.pack() for p in packets], frame_output=True)
    sink = CollectorSink(expect_frames=True)
    control = ControlThread(source, sink, auto_start=False, engine=engine)
    control.add(FecEncoderFilter(k=4, n=6, name="enc"))
    control.add(FecDecoderFilter(name="dec"))
    control.start()
    assert control.wait_for_completion(timeout=30.0)
    control.shutdown()
    engine.shutdown()
    return sink.items()


def run_boundary_insertion(engine_name):
    """Insert a packet filter at an I-frame boundary mid-stream; returns
    sink packets (the filter is content-neutral, so output must equal input
    whatever the insertion instant)."""
    engine = get_engine(engine_name)
    video = VideoSource(duration=8.0, seed=5)
    packets = [frame.to_packet().pack() for frame in video.frames()]
    source = IterableSource(list(packets), frame_output=True, pacing_s=0.002)
    sink = CollectorSink(expect_frames=True)
    control = ControlThread(source, sink, engine=engine)
    time.sleep(0.02)
    control.add(PacketPassthroughFilter(name="mid"), position=0,
                boundary=i_frame_boundary)
    time.sleep(0.02)
    control.remove("mid")
    assert control.wait_for_completion(timeout=30.0)
    control.shutdown()
    engine.shutdown()
    return sink.items()


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_fec_audio_round_trip_matches_input(self, engine_name):
        packets = AudioPacketizer(ToneSource(duration=1.0)).packet_list()
        assert run_fec_audio_round_trip(engine_name) == [
            p.pack() for p in packets]

    def test_fec_audio_round_trip_identical_across_engines(self):
        outputs = {name: run_fec_audio_round_trip(name) for name in ENGINES}
        reference = outputs[ENGINES[0]]
        for name in ENGINES[1:]:
            assert outputs[name] == reference, (name, ENGINES[0])

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_boundary_insertion_matches_input(self, engine_name):
        video = VideoSource(duration=8.0, seed=5)
        packets = [frame.to_packet().pack() for frame in video.frames()]
        assert run_boundary_insertion(engine_name) == packets

    def test_boundary_insertion_identical_across_engines(self):
        outputs = {name: run_boundary_insertion(name) for name in ENGINES}
        reference = outputs[ENGINES[0]]
        for name in ENGINES[1:]:
            assert outputs[name] == reference, (name, ENGINES[0])
