"""Property-based tests for the stream substrate and media layers."""

from hypothesis import given, settings, strategies as st

from repro.media import Depacketizer, MediaPacket, packetize_pcm
from repro.streams import FrameDecoder, StreamBuffer, encode_frames, make_pipe


class TestStreamBufferProperties:
    @given(st.lists(st.binary(min_size=0, max_size=300), max_size=30))
    def test_buffer_preserves_byte_sequence(self, chunks):
        buffer = StreamBuffer(capacity=None)
        for chunk in chunks:
            buffer.write(chunk)
        buffer.close_for_writing()
        collected = bytearray()
        while True:
            data = buffer.read(97)
            if not data:
                break
            collected.extend(data)
        assert bytes(collected) == b"".join(chunks)

    @given(st.lists(st.binary(min_size=1, max_size=100), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=64))
    def test_read_sizes_do_not_affect_content(self, chunks, read_size):
        buffer = StreamBuffer(capacity=None)
        for chunk in chunks:
            buffer.write(chunk)
        buffer.close_for_writing()
        collected = bytearray()
        while True:
            data = buffer.read(read_size)
            if not data:
                break
            collected.extend(data)
        assert bytes(collected) == b"".join(chunks)


class TestPipeProperties:
    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=25))
    @settings(deadline=None)
    def test_pipe_round_trips_any_chunk_sequence(self, chunks):
        dos, dis = make_pipe(capacity=None)
        for chunk in chunks:
            dos.write(chunk)
        dos.close()
        collected = bytearray()
        while True:
            data = dis.read(1024)
            if not data:
                break
            collected.extend(data)
        assert bytes(collected) == b"".join(chunks)

    @given(st.lists(st.binary(min_size=1, max_size=100), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=10))
    @settings(deadline=None)
    def test_pause_reconnect_between_writes_preserves_data(self, chunks, pause_every):
        dos, dis = make_pipe(capacity=None)
        collected = bytearray()
        for index, chunk in enumerate(chunks):
            dos.write(chunk)
            if index % pause_every == 0:
                # Drain before pausing (pause requires an empty buffer).
                while dis.available():
                    collected.extend(dis.read(4096))
                dos.pause(drain_timeout=1.0)
                dos.reconnect(dis)
        dos.close()
        while True:
            data = dis.read(4096)
            if not data:
                break
            collected.extend(data)
        assert bytes(collected) == b"".join(chunks)


class TestFramingProperties:
    @given(st.lists(st.binary(min_size=0, max_size=500), max_size=30),
           st.integers(min_value=1, max_value=64))
    def test_framing_survives_arbitrary_chunking(self, payloads, chunk_size):
        stream = encode_frames(payloads)
        decoder = FrameDecoder()
        out = []
        for offset in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[offset:offset + chunk_size]))
        assert out == [bytes(p) for p in payloads]
        assert not decoder.has_partial_frame()


class TestMediaProperties:
    @given(st.binary(min_size=0, max_size=5000),
           st.integers(min_value=5, max_value=100))
    def test_packetize_then_reassemble_is_identity(self, pcm, duration_ms):
        packets = packetize_pcm(pcm, packet_duration_ms=duration_ms)
        depacketizer = Depacketizer()
        for packet in packets:
            depacketizer.add(packet)
        if packets:
            rebuilt = depacketizer.reassemble(len(packets),
                                              packet_size=len(packets[0].payload))
            assert rebuilt[:len(pcm)] == pcm
        else:
            assert pcm == b""

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=0xFFFF),
           st.binary(max_size=400))
    def test_media_packet_wire_round_trip(self, sequence, timestamp, marker, payload):
        packet = MediaPacket(sequence=sequence, timestamp_ms=timestamp,
                             payload=payload, marker=marker)
        assert MediaPacket.unpack(packet.pack()) == packet
