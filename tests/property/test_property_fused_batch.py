"""Property tests: fused-batch FEC is byte-identical to the per-packet path.

The batch pump feeds the FEC layer through :meth:`FecGroupEncoder.add_batch`
and :meth:`FecGroupDecoder.add_batch`, which fuse same-shaped groups into a
single GF(256) backend product.  The fusing is an optimisation only: over
random group geometries (k, n, payload sizes, batch split points, loss
patterns, arrival order) the batched calls must produce byte-for-byte the
packets/payloads — and the same stats — as one call per packet.
"""

from hypothesis import given, settings, strategies as st

from repro.fec import FecGroupDecoder, FecGroupEncoder

# Random group geometry: small codes keep hypothesis fast while still
# exercising k == n (no parity), single-payload groups, and ragged sizes.
CODES = st.tuples(st.integers(min_value=1, max_value=5),
                  st.integers(min_value=0, max_value=3)).map(
                      lambda kn: (kn[0], kn[0] + kn[1]))
PAYLOADS = st.lists(st.binary(min_size=1, max_size=120),
                    min_size=1, max_size=24)


def packet_key(packet):
    return (packet.group_id, packet.index, packet.k, packet.n,
            bytes(packet.payload), packet.flags)


def encode_all(payloads, k, n):
    """Reference encode: one ``add`` per payload, then flush."""
    encoder = FecGroupEncoder(k=k, n=n)
    packets = []
    for payload in payloads:
        packets.extend(encoder.add(payload))
    packets.extend(encoder.flush())
    return packets, encoder.stats


class TestEncoderBatchEquivalence:
    @given(CODES, PAYLOADS)
    @settings(deadline=None, max_examples=60)
    def test_add_batch_matches_per_payload_add(self, code, payloads):
        k, n = code
        expected, expected_stats = encode_all(payloads, k, n)
        batched = FecGroupEncoder(k=k, n=n)
        packets = batched.add_batch(payloads)
        packets.extend(batched.flush())
        assert [packet_key(p) for p in packets] == \
            [packet_key(p) for p in expected]
        assert batched.stats == expected_stats

    @given(CODES, PAYLOADS, st.integers(min_value=1, max_value=7))
    @settings(deadline=None, max_examples=60)
    def test_batch_split_points_do_not_change_the_bytes(self, code, payloads,
                                                        step):
        # Feeding the same payloads as several smaller batches (arbitrary
        # split points, including splits inside a group) is equivalent to
        # one big batch: the encoder's pending state carries across calls.
        k, n = code
        expected, expected_stats = encode_all(payloads, k, n)
        batched = FecGroupEncoder(k=k, n=n)
        packets = []
        for start in range(0, len(payloads), step):
            packets.extend(batched.add_batch(payloads[start:start + step]))
        packets.extend(batched.flush())
        assert [packet_key(p) for p in packets] == \
            [packet_key(p) for p in expected]
        assert batched.stats == expected_stats

    @given(CODES, st.lists(st.binary(min_size=1, max_size=200),
                           min_size=2, max_size=20))
    @settings(deadline=None, max_examples=40)
    def test_fused_cohorts_span_mixed_block_sizes(self, code, payloads):
        # Groups with different block sizes land in different hstack
        # cohorts; interleaving ragged payloads must not bleed bytes
        # between cohorts.
        k, n = code
        ragged = [p * (1 + i % 3) for i, p in enumerate(payloads)]
        expected, _ = encode_all(ragged, k, n)
        batched = FecGroupEncoder(k=k, n=n)
        packets = batched.add_batch(ragged)
        packets.extend(batched.flush())
        assert [packet_key(p) for p in packets] == \
            [packet_key(p) for p in expected]


class TestDecoderBatchEquivalence:
    @given(CODES, PAYLOADS, st.randoms(use_true_random=False))
    @settings(deadline=None, max_examples=60)
    def test_add_batch_matches_per_packet_add_under_loss(self, code, payloads,
                                                         rng):
        k, n = code
        packets, _ = encode_all(payloads, k, n)
        # Random loss and reordering: any subset, any arrival order.  The
        # two decoders see the identical packet sequence.
        survivors = [p for p in packets if rng.random() > 0.3]
        rng.shuffle(survivors)

        sequential = FecGroupDecoder()
        expected = []
        for packet in survivors:
            expected.extend(sequential.add(packet))
        expected.extend(sequential.flush())

        batched = FecGroupDecoder()
        out = batched.add_batch(survivors)
        out.extend(batched.flush())

        assert [bytes(p) for p in out] == [bytes(p) for p in expected]
        assert batched.stats == sequential.stats

    @given(CODES, PAYLOADS, st.randoms(use_true_random=False))
    @settings(deadline=None, max_examples=60)
    def test_round_trip_recovers_everything_with_k_survivors(self, code,
                                                             payloads, rng):
        # Drop up to n-k packets per group (keeping >= k), deliver in
        # order: the batch decoder reconstructs every payload, in order.
        k, n = code
        encoder = FecGroupEncoder(k=k, n=n)
        packets = encoder.add_batch(payloads)
        packets.extend(encoder.flush())

        by_group = {}
        for packet in packets:
            by_group.setdefault(packet.group_id, []).append(packet)
        survivors = []
        for group in by_group.values():
            if any(p.is_uncoded for p in group):
                survivors.extend(group)  # tail flush: nothing to drop
                continue
            keep = sorted(rng.sample(range(n), k))
            survivors.extend(p for p in group if p.index in keep)

        decoder = FecGroupDecoder()
        out = decoder.add_batch(survivors)
        out.extend(decoder.flush())
        assert [bytes(p) for p in out] == [bytes(p) for p in payloads]
        assert decoder.stats.groups_unrecoverable == 0

    @given(CODES, PAYLOADS, st.integers(min_value=1, max_value=7),
           st.randoms(use_true_random=False))
    @settings(deadline=None, max_examples=40)
    def test_batch_split_points_do_not_change_decoding(self, code, payloads,
                                                       step, rng):
        # Same survivor sequence, chopped into arbitrary sub-batches:
        # group state carries across add_batch calls exactly as it does
        # across add calls (a group may fill in a later batch).
        k, n = code
        packets, _ = encode_all(payloads, k, n)
        survivors = [p for p in packets if rng.random() > 0.3]
        rng.shuffle(survivors)

        one_shot = FecGroupDecoder()
        expected = one_shot.add_batch(survivors)
        expected.extend(one_shot.flush())

        chunked = FecGroupDecoder()
        out = []
        for start in range(0, len(survivors), step):
            out.extend(chunked.add_batch(survivors[start:start + step]))
        out.extend(chunked.flush())

        assert [bytes(p) for p in out] == [bytes(p) for p in expected]
        assert chunked.stats == one_shot.stats


class TestFilterLevelEquivalence:
    @given(CODES, PAYLOADS)
    @settings(deadline=None, max_examples=20)
    def test_encoder_filter_batch_pump_matches_group_encoder(self, code,
                                                             payloads):
        # End to end through the packet filter's fused transform: framed
        # payloads in, the same framed FEC packets out as the plain group
        # encoder produces.
        from repro.core import CollectorSink, ControlThread, IterableSource
        from repro.filters import FecDecoderFilter, FecEncoderFilter

        k, n = code
        source = IterableSource(list(payloads), frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, auto_start=False)
        control.add(FecEncoderFilter(k=k, n=n, name="enc"))
        control.add(FecDecoderFilter(name="dec"))
        control.start()
        assert control.wait_for_completion(timeout=30.0)
        assert [bytes(i) for i in sink.items()] == \
            [bytes(p) for p in payloads]
        control.shutdown()
