"""Property-based tests (hypothesis) for the erasure-code substrate."""

from hypothesis import given, settings, strategies as st

from repro.fec import (
    BlockErasureCode,
    FecGroupDecoder,
    FecGroupEncoder,
    FecPacket,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    pad_block,
    unpad_block,
)

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestFieldProperties:
    @given(field_elements, field_elements)
    def test_addition_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(field_elements, field_elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(field_elements, field_elements, field_elements)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(nonzero_elements)
    def test_inverse_property(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(field_elements, nonzero_elements)
    def test_division_is_multiplication_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))


class TestErasureCodeProperties:
    @given(
        st.integers(min_value=1, max_value=6),      # k
        st.integers(min_value=0, max_value=4),      # extra parity
        st.integers(min_value=1, max_value=64),     # block size
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_k_of_n_blocks_reconstruct(self, k, parity, block_size, rng):
        n = k + parity
        code = BlockErasureCode(k, n)
        blocks = [bytes(rng.randrange(256) for _ in range(block_size))
                  for _ in range(k)]
        encoded = code.encode(blocks)
        received_indices = rng.sample(range(n), k)
        received = {i: encoded[i] for i in received_indices}
        assert code.decode(received) == blocks

    @given(
        st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_lossless_group_pipeline_preserves_payloads(self, payloads, k, parity):
        encoder = FecGroupEncoder(k=k, n=k + parity)
        decoder = FecGroupDecoder()
        out = []
        for payload in payloads:
            for packet in encoder.add(payload):
                out.extend(decoder.add(packet))
        for packet in encoder.flush():
            out.extend(decoder.add(packet))
        out.extend(decoder.flush())
        assert out == [bytes(p) for p in payloads]

    @given(
        st.lists(st.binary(min_size=1, max_size=100), min_size=4, max_size=20),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_loss_per_group_always_recovered(self, payloads, rng):
        """With one parity packet, losing any single packet per group is safe."""
        k, n = 4, 5
        encoder = FecGroupEncoder(k=k, n=n)
        decoder = FecGroupDecoder()
        # Only complete groups participate (the tail is flushed uncoded).
        usable = len(payloads) - (len(payloads) % k)
        payloads = payloads[:usable]
        out = []
        group = []
        for payload in payloads:
            group.extend(encoder.add(payload))
            if len(group) == n:
                lost_index = rng.randrange(n)
                for position, packet in enumerate(group):
                    if position != lost_index:
                        out.extend(decoder.add(packet))
                group = []
        out.extend(decoder.flush())
        assert out == [bytes(p) for p in payloads]

    @given(st.binary(min_size=0, max_size=300), st.integers(min_value=0, max_value=50))
    def test_pad_unpad_round_trip(self, payload, slack):
        block = pad_block(payload, len(payload) + 2 + slack)
        assert len(block) == len(payload) + 2 + slack
        assert unpad_block(block) == payload

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=1, max_value=255),
           st.binary(max_size=200),
           st.booleans())
    def test_fec_packet_wire_round_trip(self, group_id, index, k, payload, parity_flag):
        n = min(255, k + (1 if parity_flag else 0))
        packet = FecPacket(group_id=group_id, index=index, k=k, n=n,
                           payload=payload)
        assert FecPacket.unpack(packet.pack()) == packet
