"""Property-based equivalence tests between the GF(256) backends.

The numpy backend must be byte-identical to the pure-Python reference
oracle on every operation, and the batch encode/erase/decode round trip
must recover the sources for every benchmarked (n, k) configuration and
random erasure pattern.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fec import (
    BlockErasureCode,
    NumpyGFBackend,
    PurePythonGFBackend,
)

FAST = NumpyGFBackend()
ORACLE = PurePythonGFBackend()

#: The (k, n) configurations exercised by benchmarks/test_bench_fec_backends.py.
BENCHMARKED_CODES = [(8, 12), (16, 24), (32, 48)]

field_elements = st.integers(min_value=0, max_value=255)


def matrix_strategy(max_rows=8, max_cols=8):
    return st.integers(min_value=1, max_value=max_cols).flatmap(
        lambda width: st.lists(
            st.lists(field_elements, min_size=width, max_size=width),
            min_size=1,
            max_size=max_rows,
        )
    )


class TestOperationEquivalence:
    @given(matrix_strategy(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matmul_equivalence(self, a, data):
        inner = len(a[0])
        width = data.draw(st.integers(min_value=1, max_value=8))
        b = data.draw(
            st.lists(
                st.lists(field_elements, min_size=width, max_size=width),
                min_size=inner,
                max_size=inner,
            )
        )
        assert FAST.matmul(a, b) == ORACLE.matmul(a, b)

    @given(matrix_strategy(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matvec_equivalence(self, rows, data):
        vector = data.draw(
            st.lists(field_elements, min_size=len(rows[0]), max_size=len(rows[0]))
        )
        assert FAST.matvec(rows, vector) == ORACLE.matvec(rows, vector)

    @given(matrix_strategy(max_rows=6, max_cols=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_apply_matrix_equivalence(self, rows, data):
        columns = data.draw(st.integers(min_value=1, max_value=96))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        batch = rng.integers(0, 256, size=(len(rows[0]), columns), dtype=np.uint8)
        fast = FAST.apply_matrix(rows, batch)
        slow = ORACLE.apply_matrix(rows, batch)
        assert np.array_equal(fast, slow)


class TestRoundTripEquivalence:
    @given(
        st.sampled_from(BENCHMARKED_CODES),
        st.integers(min_value=1, max_value=32),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=12, deadline=None)
    def test_benchmarked_codes_round_trip_on_both_backends(self, kn, size, rng):
        k, n = kn
        source = np.frombuffer(
            bytes(rng.randrange(256) for _ in range(k * size)), dtype=np.uint8
        ).reshape(k, size)
        survivors = sorted(rng.sample(range(n), k))

        fast_code = BlockErasureCode(k, n, backend=FAST)
        slow_code = BlockErasureCode(k, n, backend=ORACLE)
        fast_encoded = fast_code.encode_batch(source)
        slow_encoded = slow_code.encode_batch(source)
        assert np.array_equal(fast_encoded, slow_encoded)

        fast_decoded = fast_code.decode_batch(survivors, fast_encoded[survivors])
        assert np.array_equal(fast_decoded, source)
        slow_decoded = slow_code.decode_batch(survivors, slow_encoded[survivors])
        assert np.array_equal(slow_decoded, source)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=48),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_codes_round_trip_with_random_erasures(
        self, k, parity, size, rng
    ):
        n = k + parity
        code = BlockErasureCode(k, n, backend=FAST)
        source = np.frombuffer(
            bytes(rng.randrange(256) for _ in range(k * size)), dtype=np.uint8
        ).reshape(k, size)
        encoded = code.encode_batch(source)
        survivors = rng.sample(range(n), k)  # unsorted erasure pattern
        decoded = code.decode_batch(survivors, encoded[survivors])
        assert np.array_equal(decoded, source)

        # The bytes API must agree with the batch API on the same erasures.
        received = {i: bytes(encoded[i]) for i in survivors}
        assert code.decode(received) == [bytes(row) for row in source]
