"""Tests for the ingress endpoints and the bridge around one proxy stream."""

import asyncio

import pytest

from repro.core import Proxy
from repro.filters import UppercaseFilter
from repro.filters.fec_filters import FecDecoderFilter, FecEncoderFilter
from repro.ingress import IngressSink, IngressSource, IngressStreamBridge


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def proxy():
    p = Proxy("bridge-test")
    yield p
    p.shutdown()


class TestEndpoints:
    def test_push_refuses_beyond_max_pending(self):
        source = IngressSource(max_pending=2)
        assert source.push(b"a")
        assert source.push(b"b")
        assert not source.push(b"c")  # full: caller must wait
        assert source.pending_items() == 2
        assert not source.has_room()

    def test_push_after_close_refused(self):
        source = IngressSource()
        source.close_input()
        assert not source.push(b"late")

    def test_empty_push_is_accepted_noop(self):
        source = IngressSource(max_pending=1)
        assert source.push(b"")
        assert source.pending_items() == 0

    def test_sink_declines_pump_when_full(self):
        sink = IngressSink(max_buffered=1)
        sink._out.append(b"waiting")
        assert not sink.wants_input_pump()
        sink.pop()
        # Empty again: defer to the normal DIS-driven answer.
        assert sink.buffered_items() == 0

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            IngressSource(max_pending=0)
        with pytest.raises(ValueError):
            IngressSink(max_buffered=0)


class TestBridge:
    def test_round_trip_through_filter_chain(self, proxy):
        async def scenario():
            bridge = IngressStreamBridge(
                proxy, name="rt", filters=[UppercaseFilter(name="up")])
            payloads = [f"msg-{i};".encode() for i in range(20)]
            for payload in payloads:
                assert await bridge.send(payload, timeout=5.0)
            bridge.close_input()
            got = bytearray()
            while True:
                out = await bridge.receive(timeout=10.0)
                if out is None:
                    break
                got += out
            assert bytes(got) == b"".join(payloads).upper()
            assert bridge.finished
            bridge.abort()

        run(scenario())

    def test_framed_fec_chain_round_trip(self, proxy):
        async def scenario():
            bridge = IngressStreamBridge(
                proxy, name="fec", frame_stream=True,
                filters=[FecEncoderFilter(k=4, n=8, name="enc"),
                         FecDecoderFilter(name="dec")])
            payloads = [f"packet-{i:03d}".encode() for i in range(10)]
            for payload in payloads:
                assert await bridge.send(payload, timeout=5.0)
            bridge.close_input()
            got = []
            while True:
                out = await bridge.receive(timeout=10.0)
                if out is None:
                    break
                got.append(out)
            assert got == payloads  # packet boundaries preserved
            bridge.abort()

        run(scenario())

    def test_send_applies_backpressure_then_recovers(self, proxy):
        async def scenario():
            # Tiny queues on both sides: the chain parks once the sink
            # holds max_buffered items, and send() must start refusing.
            bridge = IngressStreamBridge(proxy, name="bp",
                                         max_pending=2, max_buffered=2)
            payloads = [f"{i:02d};".encode() for i in range(40)]

            async def producer():
                for payload in payloads:
                    assert await bridge.send(payload, timeout=10.0)
                bridge.close_input()

            async def consumer():
                got = bytearray()
                while True:
                    out = await bridge.receive(timeout=10.0)
                    if out is None:
                        return bytes(got)
                    got += out
                    await asyncio.sleep(0.005)  # a deliberately slow client

            _, got = await asyncio.gather(producer(), consumer())
            assert got == b"".join(payloads)
            # Bounded the whole way: the sink never held more than its cap.
            assert bridge.sink.buffered_items() <= 2
            bridge.abort()

        run(scenario())

    def test_send_times_out_when_chain_is_parked(self, proxy):
        async def scenario():
            bridge = IngressStreamBridge(proxy, name="stall",
                                         max_pending=1, max_buffered=1)
            # Fill the pipeline and never pop: eventually a send must
            # report False instead of hanging the loop.
            deadline = asyncio.get_running_loop().time() + 30.0
            stalled = False
            i = 0
            payload = b"x" * 4096  # fill the stream buffers quickly
            while asyncio.get_running_loop().time() < deadline:
                if not await bridge.send(payload, timeout=0.2):
                    stalled = True
                    break
                i += 1
            assert stalled
            bridge.abort()

        run(scenario())

    def test_abort_is_idempotent_and_frees_the_proxy(self, proxy):
        async def scenario():
            bridge = IngressStreamBridge(proxy, name="gone")
            assert await bridge.send(b"data", timeout=5.0)
            bridge.abort()
            bridge.abort()  # second call is a no-op
            assert not bridge.source.push(b"late")
            # The proxy still accepts new streams after an abort.
            fresh = IngressStreamBridge(proxy, name="fresh")
            assert await fresh.send(b"ok", timeout=5.0)
            fresh.close_input()
            got = bytearray()
            while True:
                out = await fresh.receive(timeout=10.0)
                if out is None:
                    break
                got += out
            assert bytes(got) == b"ok"
            fresh.abort()

        run(scenario())

    def test_receive_timeout_raises(self, proxy):
        async def scenario():
            bridge = IngressStreamBridge(proxy, name="quiet")
            with pytest.raises(TimeoutError):
                await bridge.receive(timeout=0.1)
            bridge.abort()

        run(scenario())
