"""Unit tests for the stdlib HTTP/1.1 ingress codec."""

import asyncio

import pytest

from repro.ingress.http import (
    CHUNKED_EOF,
    MAX_CHUNK_BYTES,
    HttpProtocolError,
    HttpRequest,
    encode_chunk,
    encode_response_head,
    read_body,
    read_request,
)


def run(coro):
    return asyncio.run(coro)


def feed_reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


async def collect_body(request, reader):
    return [chunk async for chunk in read_body(request, reader)]


class TestReadRequest:
    def test_parses_request_line_and_headers(self):
        async def scenario():
            reader = feed_reader(
                b"POST /stream?x=1 HTTP/1.1\r\n"
                b"Host: example\r\n"
                b"Content-Length: 5\r\n\r\nhello")
            request = await read_request(reader)
            assert request.method == "POST"
            assert request.target == "/stream?x=1"
            assert request.path == "/stream"
            assert request.version == "HTTP/1.1"
            assert request.header("host") == "example"
            assert request.header("HOST") == "example"  # case-insensitive
            assert request.content_length == 5

        run(scenario())

    def test_clean_close_returns_none(self):
        async def scenario():
            assert await read_request(feed_reader(b"")) is None

        run(scenario())

    def test_mid_header_close_raises(self):
        async def scenario():
            with pytest.raises(HttpProtocolError):
                await read_request(feed_reader(b"GET / HTTP/1.1\r\nHos"))

        run(scenario())

    def test_bad_request_line_raises(self):
        async def scenario():
            with pytest.raises(HttpProtocolError):
                await read_request(feed_reader(b"NOT A REQUEST\r\n\r\n"))

        run(scenario())

    def test_bad_header_line_raises(self):
        async def scenario():
            with pytest.raises(HttpProtocolError):
                await read_request(
                    feed_reader(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"))

        run(scenario())

    def test_websocket_upgrade_detection(self):
        request = HttpRequest(
            method="GET", target="/stream", version="HTTP/1.1",
            headers={"upgrade": "websocket", "connection": "keep-alive, Upgrade"})
        assert request.wants_websocket
        plain = HttpRequest(method="GET", target="/", version="HTTP/1.1")
        assert not plain.wants_websocket

    def test_bad_content_length_raises(self):
        request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                              headers={"content-length": "nope"})
        with pytest.raises(HttpProtocolError):
            request.content_length
        negative = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                               headers={"content-length": "-3"})
        with pytest.raises(HttpProtocolError):
            negative.content_length


class TestReadBody:
    def test_content_length_body(self):
        async def scenario():
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"content-length": "11"})
            reader = feed_reader(b"hello world")
            assert b"".join(await collect_body(request, reader)) == b"hello world"

        run(scenario())

    def test_chunked_body_round_trip(self):
        async def scenario():
            parts = [b"alpha", b"beta", b"gamma"]
            wire = b"".join(encode_chunk(p) for p in parts) + CHUNKED_EOF
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"transfer-encoding": "chunked"})
            assert await collect_body(request, feed_reader(wire)) == parts

        run(scenario())

    def test_chunk_extensions_and_trailers_are_skipped(self):
        async def scenario():
            wire = (b"5;ext=1\r\nhello\r\n"
                    b"0\r\nTrailer: x\r\n\r\n")
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"transfer-encoding": "chunked"})
            assert await collect_body(request, feed_reader(wire)) == [b"hello"]

        run(scenario())

    def test_truncated_chunk_raises(self):
        async def scenario():
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"transfer-encoding": "chunked"})
            with pytest.raises(HttpProtocolError):
                await collect_body(request, feed_reader(b"5\r\nhel"))

        run(scenario())

    def test_bad_chunk_size_raises(self):
        async def scenario():
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"transfer-encoding": "chunked"})
            with pytest.raises(HttpProtocolError):
                await collect_body(request, feed_reader(b"zz\r\nhello\r\n"))

        run(scenario())

    def test_oversized_chunk_raises(self):
        async def scenario():
            size = MAX_CHUNK_BYTES + 1
            request = HttpRequest(method="POST", target="/", version="HTTP/1.1",
                                  headers={"transfer-encoding": "chunked"})
            with pytest.raises(HttpProtocolError):
                await collect_body(
                    request, feed_reader(b"%x\r\n" % size, eof=False))

        run(scenario())

    def test_no_body_headers_yields_nothing(self):
        async def scenario():
            request = HttpRequest(method="GET", target="/", version="HTTP/1.1")
            assert await collect_body(request, feed_reader(b"ignored")) == []

        run(scenario())


class TestEncoding:
    def test_encode_chunk_round_trips_framing(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"") == CHUNKED_EOF

    def test_response_head_format(self):
        head = encode_response_head(200, [("Content-Type", "text/plain")])
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: text/plain\r\n" in head
        assert head.endswith(b"\r\n\r\n")

    def test_unknown_status_still_encodes(self):
        assert encode_response_head(299).startswith(b"HTTP/1.1 299 ")
