"""Unit tests for the stdlib RFC 6455 WebSocket codec."""

import struct

import pytest

from repro.ingress.websocket import (
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    FrameParser,
    WebSocketProtocolError,
    accept_key,
    close_payload,
    encode_frame,
)


class TestHandshake:
    def test_accept_key_matches_rfc_sample(self):
        # RFC 6455 §1.3 worked example.
        assert (accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    def test_accept_key_strips_whitespace(self):
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert accept_key(f"  {key} ") == accept_key(key)


class TestEncodeParse:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 100000])
    def test_round_trip_all_length_encodings(self, size):
        payload = bytes(i % 256 for i in range(size))
        wire = encode_frame(OP_BINARY, payload)
        assert FrameParser().feed(wire) == [(OP_BINARY, payload)]

    def test_masked_round_trip(self):
        wire = encode_frame(OP_TEXT, b"masked hello", mask=True)
        parser = FrameParser(require_masked=True)
        assert parser.feed(wire) == [(OP_TEXT, b"masked hello")]

    def test_server_rejects_unmasked_client_frame(self):
        wire = encode_frame(OP_BINARY, b"oops", mask=False)
        with pytest.raises(WebSocketProtocolError):
            FrameParser(require_masked=True).feed(wire)

    def test_incremental_byte_at_a_time_parse(self):
        wire = encode_frame(OP_BINARY, b"dribble", mask=True)
        parser = FrameParser()
        messages = []
        for i in range(len(wire)):
            messages += parser.feed(wire[i:i + 1])
        assert messages == [(OP_BINARY, b"dribble")]

    def test_multiple_frames_in_one_feed(self):
        wire = (encode_frame(OP_BINARY, b"one")
                + encode_frame(OP_PING, b"hb")
                + encode_frame(OP_BINARY, b"two"))
        assert FrameParser().feed(wire) == [
            (OP_BINARY, b"one"), (OP_PING, b"hb"), (OP_BINARY, b"two")]

    def test_fragmented_message_is_reassembled(self):
        wire = (encode_frame(OP_TEXT, b"Hel", fin=False)
                + encode_frame(OP_CONT, b"lo ", fin=False)
                + encode_frame(OP_CONT, b"World", fin=True))
        assert FrameParser().feed(wire) == [(OP_TEXT, b"Hello World")]

    def test_control_frame_interleaves_with_fragments(self):
        wire = (encode_frame(OP_BINARY, b"ab", fin=False)
                + encode_frame(OP_PING, b"now")
                + encode_frame(OP_CONT, b"cd", fin=True))
        assert FrameParser().feed(wire) == [
            (OP_PING, b"now"), (OP_BINARY, b"abcd")]

    def test_continuation_without_start_raises(self):
        with pytest.raises(WebSocketProtocolError):
            FrameParser().feed(encode_frame(OP_CONT, b"lost", fin=True))

    def test_new_data_frame_mid_message_raises(self):
        parser = FrameParser()
        parser.feed(encode_frame(OP_BINARY, b"ab", fin=False))
        with pytest.raises(WebSocketProtocolError):
            parser.feed(encode_frame(OP_BINARY, b"cd", fin=True))

    def test_fragmented_control_frame_raises(self):
        with pytest.raises(WebSocketProtocolError):
            FrameParser().feed(encode_frame(OP_PING, b"x", fin=False))

    def test_rsv_bits_raise(self):
        wire = bytearray(encode_frame(OP_BINARY, b"x"))
        wire[0] |= 0x40
        with pytest.raises(WebSocketProtocolError):
            FrameParser().feed(bytes(wire))

    def test_oversized_control_payload_refused_at_encode(self):
        with pytest.raises(WebSocketProtocolError):
            encode_frame(OP_PING, b"x" * 126)

    def test_close_payload_carries_code_and_reason(self):
        payload = close_payload(1001, "going away")
        (code,) = struct.unpack("!H", payload[:2])
        assert code == 1001
        assert payload[2:] == b"going away"
        wire = encode_frame(OP_CLOSE, payload)
        assert FrameParser().feed(wire) == [(OP_CLOSE, payload)]
