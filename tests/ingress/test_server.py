"""End-to-end tests for the ingress server over real sockets.

Every test binds an ephemeral port, speaks raw HTTP/1.1 or RFC 6455
through ``asyncio.open_connection`` (no client library needed — the
codec under ``repro.ingress`` covers both roles) and runs whatever
execution engine ``REPRO_ENGINE`` selects, so the CI matrix exercises
the ingress path on all three engines.
"""

import asyncio

import pytest

from repro.core import Proxy
from repro.filters import UppercaseFilter
from repro.ingress import IngressServer
from repro.ingress.http import CHUNKED_EOF, encode_chunk
from repro.ingress.websocket import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    FrameParser,
    encode_frame,
)

WS_KEY = "dGhlIHNhbXBsZSBub25jZQ=="


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


async def started_server(filters=lambda: [UppercaseFilter(name="up")],
                         **kwargs):
    proxy = Proxy("ingress-e2e")
    server = IngressServer(proxy, filter_factory=filters, **kwargs)
    await server.start()
    return proxy, server


async def simple_get(port, target, extra=b""):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET %s HTTP/1.1\r\nHost: t\r\n%s\r\n"
                 % (target.encode(), extra))
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


async def ws_connect(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /stream HTTP/1.1\r\nHost: t\r\n"
                 b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
                 b"Sec-WebSocket-Key: " + WS_KEY.encode() + b"\r\n"
                 b"Sec-WebSocket-Version: 13\r\n\r\n")
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b" 101 " in head.split(b"\r\n")[0], head
    return reader, writer


async def ws_read_messages(reader, parser):
    """Read until the server's Close frame; return the data messages."""
    messages = []
    while True:
        data = await reader.read(65536)
        if not data:
            return messages
        for opcode, payload in parser.feed(data):
            if opcode == OP_CLOSE:
                return messages
            messages.append((opcode, payload))


class TestRoutes:
    def test_healthz(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                response = await simple_get(server.port, "/healthz")
                assert b" 200 " in response.split(b"\r\n")[0]
                assert b'"status": "ok"' in response
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_index_and_404_and_405(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                index = await simple_get(server.port, "/")
                assert b" 200 " in index.split(b"\r\n")[0]
                assert b"/stream" in index
                missing = await simple_get(server.port, "/nope")
                assert b" 404 " in missing.split(b"\r\n")[0]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"DELETE /stream HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                denied = await reader.read()
                writer.close()
                assert b" 405 " in denied.split(b"\r\n")[0]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_plain_get_stream_suggests_upgrade(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                response = await simple_get(server.port, "/stream")
                assert b" 426 " in response.split(b"\r\n")[0]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_malformed_request_gets_400(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"garbage\r\n\r\n")
                await writer.drain()
                response = await reader.read()
                writer.close()
                assert b" 400 " in response.split(b"\r\n")[0]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())


class TestPostStream:
    def test_chunked_body_round_trip(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"POST /stream HTTP/1.1\r\nHost: t\r\n"
                             b"Transfer-Encoding: chunked\r\n\r\n")
                parts = [f"part-{i};".encode() for i in range(30)]
                for part in parts:
                    writer.write(encode_chunk(part))
                writer.write(CHUNKED_EOF)
                await writer.drain()
                response = await reader.read()
                writer.close()
                assert b" 200 " in response.split(b"\r\n")[0]
                for part in parts:
                    assert part.upper() in response
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_content_length_body_round_trip(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                body = b"hello content length"
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"POST /stream HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: %d\r\n\r\n%s"
                             % (len(body), body))
                await writer.drain()
                response = await reader.read()
                writer.close()
                assert body.upper() in response
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_client_disconnect_mid_stream_frees_the_proxy(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                # Open a chunked POST, send a little, then vanish without
                # the terminating chunk.
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"POST /stream HTTP/1.1\r\nHost: t\r\n"
                             b"Transfer-Encoding: chunked\r\n\r\n")
                writer.write(encode_chunk(b"doomed"))
                await writer.drain()
                writer.close()

                # The server must shrug it off: a fresh client still gets
                # a complete round trip.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"POST /stream HTTP/1.1\r\nHost: t\r\n"
                             b"Transfer-Encoding: chunked\r\n\r\n")
                writer.write(encode_chunk(b"survivor"))
                writer.write(CHUNKED_EOF)
                await writer.drain()
                response = await reader.read()
                writer.close()
                assert b"SURVIVOR" in response
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())


class TestWebSocket:
    def test_echo_through_filter_chain(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                reader, writer = await ws_connect(server.port)
                sent = [f"message {i}".encode() for i in range(10)]
                for payload in sent:
                    writer.write(encode_frame(OP_BINARY, payload, mask=True))
                writer.write(encode_frame(OP_CLOSE, mask=True))
                await writer.drain()
                messages = await ws_read_messages(reader, FrameParser())
                writer.close()
                assert [p for _, p in messages] == [s.upper() for s in sent]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_ping_gets_pong(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                reader, writer = await ws_connect(server.port)
                writer.write(encode_frame(OP_PING, b"hb", mask=True))
                writer.write(encode_frame(OP_CLOSE, mask=True))
                await writer.drain()
                messages = await ws_read_messages(reader, FrameParser())
                writer.close()
                assert (OP_PONG, b"hb") in messages
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_slow_reader_is_backpressured_not_ballooned(self):
        async def scenario():
            # Tiny ingress queues: a client that writes 200 messages but
            # only starts reading after a pause forces the server to park
            # the chain (sink full -> engine gates -> source full -> TCP).
            proxy, server = await started_server(max_pending=4,
                                                 max_buffered=4)
            try:
                reader, writer = await ws_connect(server.port)
                sent = [b"x" * 512 + b"-%03d" % i for i in range(200)]

                async def write_all():
                    for payload in sent:
                        writer.write(encode_frame(OP_BINARY, payload,
                                                  mask=True))
                        await writer.drain()  # blocks once TCP backs up
                    writer.write(encode_frame(OP_CLOSE, mask=True))
                    await writer.drain()

                async def read_all_after_pause():
                    await asyncio.sleep(0.3)  # let the pipeline jam first
                    return await ws_read_messages(reader, FrameParser())

                _, messages = await asyncio.gather(write_all(),
                                                   read_all_after_pause())
                writer.close()
                payloads = [p for _, p in messages]
                assert payloads == [s.upper() for s in sent]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_ws_disconnect_mid_stream_frees_the_proxy(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                _, writer = await ws_connect(server.port)
                writer.write(encode_frame(OP_BINARY, b"doomed", mask=True))
                await writer.drain()
                writer.close()  # vanish without a Close frame

                reader, writer = await ws_connect(server.port)
                writer.write(encode_frame(OP_BINARY, b"alive", mask=True))
                writer.write(encode_frame(OP_CLOSE, mask=True))
                await writer.drain()
                messages = await ws_read_messages(reader, FrameParser())
                writer.close()
                assert (OP_BINARY, b"ALIVE") in messages
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_missing_key_is_rejected(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                response = await simple_get(
                    server.port, "/stream",
                    extra=b"Upgrade: websocket\r\nConnection: Upgrade\r\n")
                assert b" 400 " in response.split(b"\r\n")[0]
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())


class TestServerLifecycle:
    def test_ephemeral_port_resolves_and_stop_is_idempotent(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                assert server.port != 0
                assert server.describe()["port"] == server.port
            finally:
                await server.stop()
                await server.stop()
                proxy.shutdown()

        run(scenario())

    def test_start_is_idempotent(self):
        async def scenario():
            proxy, server = await started_server()
            try:
                port = server.port
                await server.start()
                assert server.port == port
            finally:
                await server.stop()
                proxy.shutdown()

        run(scenario())
