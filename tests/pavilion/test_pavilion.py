"""Unit tests for the Pavilion substrate: leadership, browsers, sessions."""

import pytest

from repro.pavilion import (
    BrowseMessage,
    BrowserInterface,
    BrowserProtocolError,
    CollaborativeSession,
    LeadershipError,
    LeadershipProtocol,
    ResourceNotFound,
    ResourceStore,
    SessionError,
    build_demo_site,
)
from repro.proxies import DeviceDescriptor


class TestResourceStore:
    def test_put_and_fetch(self):
        store = ResourceStore()
        store.put("http://x/a", b"<html>a</html>")
        resource = store.fetch("http://x/a")
        assert resource.body == b"<html>a</html>"
        assert resource.size == 14
        assert store.fetch_count == 1
        assert store.bytes_served == 14

    def test_missing_resource_raises(self):
        with pytest.raises(ResourceNotFound):
            ResourceStore().fetch("http://nowhere")

    def test_demo_site_structure(self):
        store = build_demo_site(page_count=5, images_per_page=2, seed=1)
        assert len(store) == 5 * 3
        html_pages = [u for u in store.urls() if u.endswith(".html")]
        assert len(html_pages) == 5

    def test_demo_site_deterministic(self):
        a = build_demo_site(page_count=3, seed=9)
        b = build_demo_site(page_count=3, seed=9)
        for url in a.urls():
            assert a.fetch(url).body == b.fetch(url).body

    def test_demo_site_validation(self):
        with pytest.raises(ValueError):
            build_demo_site(page_count=0)


class TestLeadershipProtocol:
    def test_first_member_becomes_leader(self):
        protocol = LeadershipProtocol()
        assert protocol.join("alice") is True
        assert protocol.join("bob") is False
        assert protocol.leader == "alice"
        assert protocol.members == ["alice", "bob"]

    def test_duplicate_join_rejected(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        with pytest.raises(LeadershipError):
            protocol.join("alice")

    def test_request_grant_cycle(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        protocol.join("bob")
        assert protocol.request("bob") is False
        assert protocol.pending_requests() == ["bob"]
        new_leader = protocol.grant("alice")
        assert new_leader == "bob"
        assert protocol.leader == "bob"
        assert protocol.leader_changes() == ["alice", "bob"]

    def test_only_leader_can_grant_or_deny(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        protocol.join("bob")
        protocol.request("bob")
        with pytest.raises(LeadershipError):
            protocol.grant("bob")
        with pytest.raises(LeadershipError):
            protocol.deny("bob", "bob")

    def test_deny_clears_request(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        protocol.join("bob")
        protocol.request("bob")
        protocol.deny("alice", "bob")
        assert protocol.pending_requests() == []

    def test_auto_grant_mode(self):
        protocol = LeadershipProtocol(auto_grant=True)
        protocol.join("alice")
        protocol.join("bob")
        assert protocol.request("bob") is True
        assert protocol.leader == "bob"

    def test_leader_departure_promotes_requester(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        protocol.join("bob")
        protocol.join("carol")
        protocol.request("carol")
        assert protocol.leave("alice") == "carol"
        assert protocol.leader == "carol"

    def test_leader_departure_without_requests_promotes_oldest(self):
        protocol = LeadershipProtocol()
        protocol.join("alice", now_s=0.0)
        protocol.join("bob", now_s=1.0)
        protocol.join("carol", now_s=2.0)
        assert protocol.leave("alice") == "bob"

    def test_last_member_leaving_clears_leader(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        assert protocol.leave("alice") is None
        assert protocol.leader is None

    def test_release_passes_to_queue_head(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        protocol.join("bob")
        protocol.request("bob")
        assert protocol.release("alice") == "bob"
        with pytest.raises(LeadershipError):
            protocol.release("alice")

    def test_request_by_leader_is_trivially_true(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        assert protocol.request("alice") is True

    def test_unknown_member_operations_rejected(self):
        protocol = LeadershipProtocol()
        protocol.join("alice")
        with pytest.raises(LeadershipError):
            protocol.request("ghost")
        with pytest.raises(LeadershipError):
            protocol.leave("ghost")
        with pytest.raises(LeadershipError):
            protocol.grant("alice", "ghost")


class TestBrowserInterface:
    def test_message_round_trip(self):
        message = BrowseMessage(message_type="content", sender="alice",
                                url="http://x/a", sequence=3,
                                content_type="text/html", body=b"<html></html>")
        assert BrowseMessage.unpack(message.pack()) == message

    def test_malformed_message_rejected(self):
        with pytest.raises(BrowserProtocolError):
            BrowseMessage.unpack(b"no newline here")
        with pytest.raises(BrowserProtocolError):
            BrowseMessage.unpack(b"not json\nbody")

    def test_announce_and_receive(self):
        leader = BrowserInterface("alice")
        follower = BrowserInterface("bob")
        announcement = leader.announce_url("http://x/a")
        content = leader.content_message("http://x/a", "text/html", b"<html>")
        follower.receive(announcement.pack())
        follower.receive(content.pack())
        assert follower.urls_seen == ["http://x/a"]
        assert follower.pages() == ["http://x/a"]
        assert follower.page("http://x/a").body == b"<html>"
        assert follower.bytes_received() == 6

    def test_receive_garbage_counts_error(self):
        browser = BrowserInterface("bob")
        assert browser.receive(b"garbage") is None
        assert browser.protocol_errors == 1

    def test_unknown_page_lookup_raises(self):
        with pytest.raises(KeyError):
            BrowserInterface("bob").page("http://never")

    def test_summary(self):
        browser = BrowserInterface("bob")
        summary = browser.summary()
        assert summary == {"pages": 0, "urls_seen": 0, "bytes": 0, "errors": 0}


class TestCollaborativeSession:
    def make_session(self, **kwargs):
        store = build_demo_site(page_count=4, images_per_page=1, seed=7)
        return CollaborativeSession(store=store, **kwargs), store

    def test_wired_only_browsing(self):
        session, store = self.make_session()
        try:
            session.join("alice")
            session.join("bob")
            url = [u for u in store.urls() if u.endswith(".html")][0]
            session.browse("alice", url)
            assert session.participant("bob").browser.pages() == [url]
            # The leader's own browser does not receive its multicast copy.
            assert session.participant("alice").browser.pages() == []
        finally:
            session.shutdown()

    def test_only_leader_may_browse(self):
        session, store = self.make_session()
        try:
            session.join("alice")
            session.join("bob")
            with pytest.raises(SessionError):
                session.browse("bob", store.urls()[0])
            with pytest.raises(SessionError):
                session.browse("ghost", store.urls()[0])
        finally:
            session.shutdown()

    def test_floor_handoff_enables_new_leader(self):
        session, store = self.make_session()
        try:
            session.join("alice")
            session.join("bob")
            url = [u for u in store.urls() if u.endswith(".html")][0]
            assert session.request_floor("bob") is False
            assert session.grant_floor() == "bob"
            session.browse("bob", url)
            assert session.participant("alice").browser.pages() == [url]
        finally:
            session.shutdown()

    def test_wireless_member_receives_through_proxy(self):
        session, store = self.make_session()
        try:
            session.join("alice")
            session.join("palmtop", device=DeviceDescriptor.palmtop(),
                         wireless=True, distance_m=10.0)
            urls = [u for u in store.urls() if u.endswith(".html")][:2]
            for url in urls:
                session.browse("alice", url)
            palmtop = session.participant("palmtop")
            assert palmtop.browser.pages() == urls
            assert palmtop.bytes_over_air > 0
            summary = session.delivery_summary()
            assert summary["palmtop"]["pages"] == 2
        finally:
            session.shutdown()

    def test_wireless_compression_reduces_air_bytes(self):
        compressed, store = self.make_session(compress_wireless=True)
        plain, _store2 = self.make_session(compress_wireless=False)
        try:
            for session in (compressed, plain):
                session.join("alice")
                session.join("laptop", wireless=True, distance_m=8.0)
            url = [u for u in store.urls() if u.endswith(".html")][0]
            compressed.browse("alice", url)
            plain.browse("alice", [u for u in _store2.urls()
                                   if u.endswith(".html")][0])
            assert (compressed.wlan.access_point.bytes_sent
                    < plain.wlan.access_point.bytes_sent)
        finally:
            compressed.shutdown()
            plain.shutdown()

    def test_leave_moves_leadership(self):
        session, _store = self.make_session()
        try:
            session.join("alice")
            session.join("bob")
            new_leader = session.leave("alice")
            assert new_leader == "bob"
            assert session.leader == "bob"
            assert session.participants() == ["bob"]
        finally:
            session.shutdown()

    def test_duplicate_join_rejected(self):
        session, _store = self.make_session()
        try:
            session.join("alice")
            with pytest.raises(SessionError):
                session.join("alice")
        finally:
            session.shutdown()
