"""Direct unit tests for SocketSource / SocketSink over socketpairs.

Before the transport layer these endpoints were only exercised indirectly
(one proxied loopback-TCP round trip); these tests pin down their contract:
EOF on peer close, prompt stop without a poll-cycle burn, mid-stream
disconnect behaviour, the configurable receive timeout, and operation over
a transport-layer stream connection.
"""

import socket
import time

import pytest

from repro.core import CollectorSink, IterableSource, SocketSink, SocketSource, null_proxy
from repro.transport import memory_stream_pair


def _pair():
    a, b = socket.socketpair()
    return a, b


class TestSocketSource:
    def test_reads_until_peer_close(self):
        writer, reader = _pair()
        source = SocketSource(reader)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        writer.sendall(b"hello ")
        writer.sendall(b"world")
        writer.close()
        assert control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"hello world"
        assert source.error is None
        control.shutdown()

    def test_peer_close_is_immediate_eof(self):
        """EOF must arrive without waiting out a recv_timeout poll cycle."""
        writer, reader = _pair()
        source = SocketSource(reader, recv_timeout=30.0)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        writer.sendall(b"x")
        start = time.monotonic()
        writer.close()
        assert control.wait_for_completion(timeout=5.0)
        assert time.monotonic() - start < 5.0
        assert sink.data() == b"x"
        control.shutdown()

    def test_stop_unblocks_long_timeout(self):
        """stop() must not wait for a full recv_timeout to elapse."""
        writer, reader = _pair()
        source = SocketSource(reader, recv_timeout=30.0)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        time.sleep(0.05)  # let the worker park in recv()
        start = time.monotonic()
        control.shutdown(timeout=5.0)
        assert time.monotonic() - start < 5.0
        assert not source.running
        writer.close()

    def test_mid_stream_disconnect_reader_side(self):
        """Abruptly closing the peer mid-stream ends the chain cleanly."""
        writer, reader = _pair()
        source = SocketSource(reader)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        writer.sendall(b"partial")
        time.sleep(0.1)
        # Simulate a crash: reset rather than orderly shutdown.
        writer.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                          b"\x01\x00\x00\x00\x00\x00\x00\x00")
        writer.close()
        assert control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"partial"
        control.shutdown()

    def test_invalid_recv_timeout_rejected(self):
        reader, _writer = _pair()
        with pytest.raises(ValueError):
            SocketSource(reader, recv_timeout=0)

    def test_over_transport_stream_connection(self):
        """The endpoint accepts a transport StreamConnection directly."""
        client, server = memory_stream_pair()
        source = SocketSource(server)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        client.send(b"via-memory-pipe")
        client.close_sending()
        assert control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"via-memory-pipe"
        control.shutdown()


class TestSocketSink:
    def test_writes_and_half_closes_on_eof(self):
        sink_sock, observer = _pair()
        source = IterableSource([b"abc", b"def"])
        sink = SocketSink(sink_sock)
        control = null_proxy(source, sink)
        assert control.wait_for_completion(timeout=5.0)
        control.shutdown()
        received = bytearray()
        observer.settimeout(5.0)
        while True:
            chunk = observer.recv(4096)
            if not chunk:
                break  # the sink half-closed: the peer sees EOF
            received.extend(chunk)
        assert bytes(received) == b"abcdef"
        observer.close()
        sink_sock.close()

    def test_mid_stream_disconnect_records_error(self):
        """A peer that vanishes mid-stream surfaces as a sink error."""
        sink_sock, observer = _pair()
        observer.close()  # peer gone before the stream starts writing
        # The first write to a closed socketpair peer may land in the
        # kernel buffer; the next raises EPIPE.  A handful of small chunks
        # faults the sink while the source still drains to EOF.
        chunks = [b"x" * 1024] * 8
        source = IterableSource(chunks)
        sink = SocketSink(sink_sock)
        control = null_proxy(source, sink)
        # A faulted sink never observes EOF (wait_for_completion is "EOF
        # reached the sink"), so wait for the elements themselves.
        assert sink.wait_finished(timeout=10.0)
        assert source.wait_finished(timeout=10.0)
        assert sink.error is not None
        control.shutdown()
        sink_sock.close()

    def test_round_trip_between_socket_endpoints(self):
        """SocketSource -> chain -> SocketSink across two socketpairs."""
        app_writer, proxy_reader = _pair()
        proxy_writer, app_reader = _pair()
        control = null_proxy(SocketSource(proxy_reader),
                             SocketSink(proxy_writer))
        app_writer.sendall(b"end to end")
        app_writer.close()
        assert control.wait_for_completion(timeout=5.0)
        app_reader.settimeout(5.0)
        received = bytearray()
        while True:
            chunk = app_reader.recv(4096)
            if not chunk:
                break
            received.extend(chunk)
        assert bytes(received) == b"end to end"
        control.shutdown()
        app_reader.close()
        proxy_writer.close()
