"""Unit tests for the filter registry, command handler and control manager."""


import pytest

from repro.core import (
    CollectorSink,
    CommandHandler,
    ControlManager,
    ControlProtocolError,
    ControlServer,
    FilterRegistry,
    FilterSpec,
    IterableSource,
    Proxy,
    ProxyControlClient,
    RegistryError,
    default_registry,
)
from repro.core.commands import decode_message, encode_message
from repro.filters import PassthroughFilter, UppercaseFilter


UPLOAD_SOURCE = '''
class ReverseFilter(Filter):
    """Uploaded filter that reverses each chunk."""

    type_name = "uploaded-reverse"

    def transform(self, chunk):
        return chunk[::-1]
'''


def make_proxy(chunk_count=200, pacing_s=0.002, name="p"):
    proxy = Proxy(name)
    source = IterableSource([f"c{i};".encode() for i in range(chunk_count)],
                            pacing_s=pacing_s)
    sink = CollectorSink()
    proxy.add_stream(source, sink, name="main")
    return proxy, sink


class TestFilterSpec:
    def test_round_trip_json(self):
        spec = FilterSpec("uppercase", args={"name": "u"}, name="u")
        assert FilterSpec.from_json(spec.to_json()) == spec

    def test_missing_type_rejected(self):
        with pytest.raises(RegistryError):
            FilterSpec.from_dict({"args": {}})

    def test_invalid_json_rejected(self):
        with pytest.raises(RegistryError):
            FilterSpec.from_json("{not json")


class TestFilterRegistry:
    def test_register_and_create(self):
        registry = FilterRegistry()
        registry.register(UppercaseFilter)
        created = registry.create(FilterSpec("uppercase", name="inst"))
        assert isinstance(created, UppercaseFilter)
        assert created.name == "inst"

    def test_register_non_filter_rejected(self):
        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.register(dict)

    def test_register_generic_type_name_rejected(self):
        from repro.core import Filter

        class Anonymous(Filter):
            pass  # inherits type_name "filter"

        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.register(Anonymous)

    def test_unknown_type_rejected(self):
        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.get("nope")
        with pytest.raises(RegistryError):
            registry.create(FilterSpec("nope"))

    def test_bad_constructor_args_rejected(self):
        registry = FilterRegistry()
        registry.register(UppercaseFilter)
        with pytest.raises(RegistryError):
            registry.create(FilterSpec("uppercase", args={"bogus_arg": 1}))

    def test_types_listing_and_unregister(self):
        registry = FilterRegistry()
        registry.register(UppercaseFilter)
        registry.register(PassthroughFilter)
        assert registry.types() == ["passthrough", "uppercase"]
        registry.unregister("uppercase")
        assert not registry.has("uppercase")

    def test_default_registry_has_builtin_filters(self):
        registry = default_registry()
        assert "fec-encoder" in registry.types()
        assert "fec-decoder" in registry.types()
        assert "uppercase" in registry.types()

    def test_upload_source_registers_new_type(self):
        registry = FilterRegistry()
        registered = registry.upload_source("thirdparty", UPLOAD_SOURCE)
        assert registered == ["uploaded-reverse"]
        created = registry.create(FilterSpec("uploaded-reverse"))
        assert created.transform(b"abc") == b"cba"
        assert registry.uploaded_modules() == ["thirdparty"]

    def test_upload_disabled(self):
        registry = FilterRegistry(allow_uploads=False)
        with pytest.raises(RegistryError):
            registry.upload_source("x", UPLOAD_SOURCE)

    def test_upload_with_syntax_error_rejected(self):
        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.upload_source("bad", "def broken(:\n  pass")

    def test_upload_without_filter_classes_rejected(self):
        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.upload_source("empty", "x = 42")

    def test_upload_invalid_module_name_rejected(self):
        registry = FilterRegistry()
        with pytest.raises(RegistryError):
            registry.upload_source("not a module!", UPLOAD_SOURCE)


class TestCommandHandler:
    def test_ping(self):
        proxy, _ = make_proxy()
        handler = CommandHandler(proxy)
        assert handler.handle({"command": "ping"})["reply"] == "pong"
        proxy.shutdown()

    def test_list_streams_and_describe(self):
        proxy, _ = make_proxy()
        handler = CommandHandler(proxy)
        assert handler.handle({"command": "list_streams"})["streams"] == ["main"]
        snapshot = handler.handle({"command": "describe", "stream": "main"})
        assert snapshot["ok"]
        assert snapshot["snapshot"]["stream_name"] == "main"
        proxy.shutdown()

    def test_insert_and_remove_filter(self):
        proxy, sink = make_proxy()
        handler = CommandHandler(proxy)
        response = handler.handle({
            "command": "insert_filter", "stream": "main",
            "spec": {"type": "uppercase", "name": "up"},
        })
        assert response["ok"] and response["filters"] == ["up"]
        response = handler.handle({
            "command": "remove_filter", "stream": "main", "filter": "up"})
        assert response["ok"] and response["filters"] == []
        proxy.shutdown()

    def test_unknown_command_and_errors_are_reported(self):
        proxy, _ = make_proxy()
        handler = CommandHandler(proxy)
        assert not handler.handle({"command": "explode"})["ok"]
        assert not handler.handle({"command": "remove_filter", "stream": "main",
                                   "filter": "ghost"})["ok"]
        assert not handler.handle({"command": "insert_filter", "stream": "main"})["ok"]
        proxy.shutdown()

    def test_stream_field_optional_with_single_stream(self):
        proxy, _ = make_proxy()
        handler = CommandHandler(proxy)
        response = handler.handle({"command": "stats"})
        assert response["ok"]
        proxy.shutdown()

    def test_upload_then_insert_uploaded_filter(self):
        proxy, sink = make_proxy(chunk_count=400)
        registry = FilterRegistry()
        handler = CommandHandler(proxy, registry=registry)
        response = handler.handle({"command": "upload_filters",
                                   "module": "ext", "source": UPLOAD_SOURCE})
        assert response["ok"] and "uploaded-reverse" in response["registered"]
        response = handler.handle({
            "command": "insert_filter", "stream": "main",
            "spec": {"type": "uploaded-reverse"}})
        assert response["ok"]
        proxy.shutdown()

    def test_handle_line_round_trip(self):
        proxy, _ = make_proxy()
        handler = CommandHandler(proxy)
        reply = handler.handle_line(encode_message({"command": "ping"}).strip())
        assert decode_message(reply)["reply"] == "pong"
        bad = handler.handle_line(b"this is not json")
        assert decode_message(bad)["ok"] is False
        proxy.shutdown()


class TestControlServerAndManager:
    def test_tcp_round_trip(self):
        proxy, _ = make_proxy(chunk_count=500, pacing_s=0.001)
        with ControlServer(proxy) as server:
            client = ProxyControlClient(server.address)
            assert client.ping()
            assert client.streams() == ["main"]
            assert "uppercase" in client.filter_types()
            name = client.insert_filter(FilterSpec("uppercase", name="up"),
                                        stream="main")
            assert name == "up"
            snapshot = client.snapshot("main")
            assert snapshot.filter_names == ["up"]
            client.remove_filter("up", stream="main")
            assert client.snapshot("main").filter_names == []
            client.close()
        proxy.shutdown()

    def test_tcp_error_propagates_as_exception(self):
        proxy, _ = make_proxy()
        with ControlServer(proxy) as server:
            client = ProxyControlClient(server.address)
            with pytest.raises(ControlProtocolError):
                client.remove_filter("missing", stream="main")
            client.close()
        proxy.shutdown()

    def test_in_process_client(self):
        proxy, _ = make_proxy()
        client = ProxyControlClient(proxy)
        assert client.ping()
        assert client.streams() == ["main"]
        proxy.shutdown()

    def test_control_manager_multiple_proxies(self):
        proxy_a, _ = make_proxy(name="alpha")
        proxy_b, _ = make_proxy(name="beta")
        manager = ControlManager()
        manager.register_proxy("alpha", proxy_a)
        manager.register_proxy("beta", proxy_b)
        assert manager.proxy_names() == ["alpha", "beta"]
        assert manager.ping_all() == {"alpha": True, "beta": True}
        manager.insert_filter("alpha", FilterSpec("uppercase", name="up"),
                              stream="main")
        rendering = manager.render_state()
        assert "proxy alpha" in rendering
        assert "up" in rendering
        assert "[source] -> [sink]" in rendering  # beta is still a null proxy
        manager.close()
        proxy_a.shutdown()
        proxy_b.shutdown()

    def test_control_manager_upload(self):
        proxy, _ = make_proxy(name="uploader")
        manager = ControlManager()
        manager.register_proxy("uploader", proxy, registry=FilterRegistry())
        registered = manager.upload_filters("uploader", "ext", UPLOAD_SOURCE)
        assert registered == ["uploaded-reverse"]
        manager.close()
        proxy.shutdown()

    def test_unknown_proxy_rejected(self):
        manager = ControlManager()
        with pytest.raises(ControlProtocolError):
            manager.client("ghost")
