"""Property tests pinning ChainSnapshot.to_dict / from_dict as inverses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import ChainSnapshot, FilterStats, _SNAPSHOT_FIELDS

counters = st.integers(min_value=0, max_value=2**40)

stat_dicts = st.fixed_dictionaries({
    "chunks_in": counters,
    "chunks_out": counters,
    "bytes_in": counters,
    "bytes_out": counters,
    "packets_in": counters,
    "packets_out": counters,
    "errors": counters,
    "budget_exhausted": counters,
})

names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), whitelist_characters="-_."
    ),
    min_size=0,
    max_size=24,
)


@st.composite
def snapshots(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    return ChainSnapshot(
        stream_name=draw(names),
        filter_names=[draw(names) for _ in range(count)],
        filter_types=[draw(names) for _ in range(count)],
        filter_stats=[draw(stat_dicts) for _ in range(count)],
        source_stats=draw(stat_dicts),
        sink_stats=draw(stat_dicts),
        running=draw(st.booleans()),
    )


class TestRoundTrip:
    @given(snapshots())
    @settings(max_examples=100, deadline=None)
    def test_from_dict_inverts_to_dict(self, snapshot):
        assert ChainSnapshot.from_dict(snapshot.to_dict()) == snapshot

    @given(snapshots())
    @settings(max_examples=50, deadline=None)
    def test_to_dict_is_json_safe(self, snapshot):
        import json

        payload = json.loads(json.dumps(snapshot.to_dict()))
        assert ChainSnapshot.from_dict(payload) == snapshot

    @given(snapshots(), st.sampled_from(sorted(_SNAPSHOT_FIELDS)))
    @settings(max_examples=50, deadline=None)
    def test_missing_field_raises(self, snapshot, field):
        payload = snapshot.to_dict()
        del payload[field]
        with pytest.raises(ValueError, match=field):
            ChainSnapshot.from_dict(payload)

    def test_missing_fields_all_named(self):
        with pytest.raises(ValueError) as excinfo:
            ChainSnapshot.from_dict({"stream_name": "s"})
        message = str(excinfo.value)
        for field in _SNAPSHOT_FIELDS:
            if field != "stream_name":
                assert field in message

    def test_live_snapshot_round_trips(self):
        stats = FilterStats()
        stats.record_input_batch(100, 3, packets=2)
        stats.record_output(40, packets=1)
        stats.record_error()
        stats.record_budget_exhausted()
        snapshot = ChainSnapshot(
            stream_name="live",
            filter_names=["f"],
            filter_types=["passthrough"],
            filter_stats=[stats.snapshot()],
            source_stats=FilterStats().snapshot(),
            sink_stats=FilterStats().snapshot(),
            running=True,
        )
        assert ChainSnapshot.from_dict(snapshot.to_dict()) == snapshot
        assert snapshot.filter_stats[0]["budget_exhausted"] == 1
