"""Unit tests for the ControlThread: dynamic composition on a live stream."""

import time

import pytest

from repro.core import (
    CollectorSink,
    CompositionError,
    Filter,
    IterableSource,
    null_proxy,
)
from repro.filters import (
    PacketPassthroughFilter,
    PassthroughFilter,
    UppercaseFilter,
    XorCipherFilter,
)


def make_chunks(count, prefix="chunk"):
    return [f"{prefix}-{i:04d};".encode() for i in range(count)]


def build_stream(chunks, pacing_s=0.0, frame_output=False, expect_frames=False):
    source = IterableSource(list(chunks), pacing_s=pacing_s,
                            frame_output=frame_output)
    sink = CollectorSink(expect_frames=expect_frames)
    control = null_proxy(source, sink, name="test-stream")
    return control, sink


class TestNullProxy:
    def test_forwards_everything_unmodified(self):
        chunks = make_chunks(50)
        control, sink = build_stream(chunks)
        assert control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_snapshot_of_empty_chain(self):
        control, sink = build_stream(make_chunks(5))
        control.wait_for_completion(timeout=5.0)
        snap = control.snapshot()
        assert snap.filter_names == []
        assert snap.stream_name == "test-stream"
        control.shutdown()

    def test_describe_lists_source_and_sink(self):
        control, _sink = build_stream(make_chunks(3))
        control.wait_for_completion(timeout=5.0)
        descriptions = control.describe()
        assert descriptions[0]["type"] == "iterable-source"
        assert descriptions[-1]["type"] == "collector-sink"
        control.shutdown()


class TestInsertion:
    def test_insert_on_running_stream_preserves_all_data(self):
        chunks = make_chunks(300)
        control, sink = build_stream(chunks, pacing_s=0.001)
        time.sleep(0.05)
        control.add(PassthroughFilter(name="pt"))
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        assert control.filter_names() == ["pt"]
        control.shutdown()

    def test_insert_transform_applies_only_after_insertion(self):
        chunks = make_chunks(300)
        control, sink = build_stream(chunks, pacing_s=0.001)
        time.sleep(0.05)
        control.add(UppercaseFilter(name="up"))
        assert control.wait_for_completion(timeout=20.0)
        data = sink.data()
        assert len(data) == len(b"".join(chunks))
        assert b"chunk" in data   # early data passed through before insertion
        assert b"CHUNK" in data   # later data transformed
        control.shutdown()

    def test_insert_multiple_filters_in_order(self):
        chunks = make_chunks(200)
        control, sink = build_stream(chunks, pacing_s=0.001)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        control.add(PassthroughFilter(name="c"), position=1)
        assert control.filter_names() == ["a", "c", "b"]
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_insert_position_out_of_range_rejected(self):
        control, _sink = build_stream(make_chunks(10), pacing_s=0.01)
        with pytest.raises(CompositionError):
            control.add(PassthroughFilter(), position=5)
        control.shutdown()

    def test_insert_already_started_filter_rejected(self):
        control, _sink = build_stream(make_chunks(10), pacing_s=0.01)
        rogue = PassthroughFilter()
        rogue.start()
        with pytest.raises(CompositionError):
            control.add(rogue)
        rogue.stop()
        control.shutdown()

    def test_insert_connected_filter_rejected(self):
        control, _sink = build_stream(make_chunks(10), pacing_s=0.01)
        from repro.streams import DetachableInputStream
        rogue = PassthroughFilter()
        rogue.dos.connect(DetachableInputStream())
        with pytest.raises(CompositionError):
            control.add(rogue)
        control.shutdown()

    def test_insert_packet_filters_on_framed_stream(self):
        packets = [f"packet-{i}".encode() for i in range(100)]
        source = IterableSource(packets, frame_output=True, pacing_s=0.001)
        sink = CollectorSink(expect_frames=True)
        control = null_proxy(source, sink)
        control.add(PacketPassthroughFilter(name="pp"))
        assert control.wait_for_completion(timeout=20.0)
        assert sink.items() == packets
        control.shutdown()

    def test_symmetric_filters_cancel_out(self):
        packets = [f"secret-{i}".encode() for i in range(50)]
        source = IterableSource(packets, frame_output=True, pacing_s=0.002)
        sink = CollectorSink(expect_frames=True)
        control = null_proxy(source, sink)
        control.add(XorCipherFilter(key=b"k", name="enc"))
        control.add(XorCipherFilter(key=b"k", name="dec"))
        assert control.wait_for_completion(timeout=20.0)
        assert sink.items() == packets
        control.shutdown()


class TestRemoval:
    def test_remove_by_name_and_index(self):
        chunks = make_chunks(400)
        control, sink = build_stream(chunks, pacing_s=0.001)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        time.sleep(0.05)
        removed = control.remove("a")
        assert removed.name == "a"
        assert control.filter_names() == ["b"]
        removed2 = control.remove(0)
        assert removed2.name == "b"
        assert control.filter_names() == []
        assert control.wait_for_completion(timeout=20.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()

    def test_removed_filter_is_stopped(self):
        control, _sink = build_stream(make_chunks(200), pacing_s=0.002)
        f = PassthroughFilter(name="gone")
        control.add(f)
        time.sleep(0.05)
        control.remove("gone")
        assert not f.running
        control.shutdown()

    def test_remove_unknown_filter_raises(self):
        control, _sink = build_stream(make_chunks(10), pacing_s=0.01)
        with pytest.raises(CompositionError):
            control.remove("ghost")
        with pytest.raises(CompositionError):
            control.remove(3)
        control.shutdown()

    def test_insert_then_remove_mid_stream_loses_nothing(self):
        chunks = make_chunks(500)
        control, sink = build_stream(chunks, pacing_s=0.0005)
        for _ in range(3):
            time.sleep(0.02)
            control.add(UppercaseFilter(name="tmp"))
            time.sleep(0.02)
            control.remove("tmp")
        assert control.wait_for_completion(timeout=30.0)
        data = sink.data()
        assert len(data) == len(b"".join(chunks))
        # Same content modulo case.
        assert data.lower() == b"".join(chunks).lower()
        control.shutdown()


class TestMoveReorderReplace:
    def _tagger(self, tag):
        class Tagger(Filter):
            type_name = f"tagger-{tag}"

            def transform(self, chunk, _tag=tag):
                return chunk + _tag.encode()

        return Tagger(name=tag)

    def test_replace_swaps_filter(self):
        chunks = make_chunks(300)
        control, sink = build_stream(chunks, pacing_s=0.001)
        control.add(PassthroughFilter(name="old"))
        time.sleep(0.05)
        old = control.replace("old", UppercaseFilter(name="new"))
        assert old.name == "old"
        assert control.filter_names() == ["new"]
        assert control.wait_for_completion(timeout=20.0)
        assert len(sink.data()) == len(b"".join(chunks))
        control.shutdown()

    def test_move_changes_order(self):
        control, _sink = build_stream(make_chunks(400), pacing_s=0.001)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        control.add(PassthroughFilter(name="c"))
        control.move("c", 0)
        assert control.filter_names() == ["c", "a", "b"]
        control.shutdown()

    def test_move_to_invalid_position_rejected(self):
        control, _sink = build_stream(make_chunks(50), pacing_s=0.01)
        control.add(PassthroughFilter(name="a"))
        with pytest.raises(CompositionError):
            control.move("a", 5)
        control.shutdown()

    def test_reorder_full_chain(self):
        control, sink = build_stream(make_chunks(400), pacing_s=0.001)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        control.add(PassthroughFilter(name="c"))
        control.reorder(["b", "c", "a"])
        assert control.filter_names() == ["b", "c", "a"]
        assert control.wait_for_completion(timeout=20.0)
        control.shutdown()

    def test_reorder_must_cover_every_filter(self):
        control, _sink = build_stream(make_chunks(50), pacing_s=0.01)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        with pytest.raises(CompositionError):
            control.reorder(["a"])
        with pytest.raises(CompositionError):
            control.reorder(["a", "a"])
        control.shutdown()

    def test_data_order_preserved_across_reorder(self):
        chunks = make_chunks(500)
        control, sink = build_stream(chunks, pacing_s=0.0005)
        control.add(PassthroughFilter(name="a"))
        control.add(PassthroughFilter(name="b"))
        time.sleep(0.05)
        control.reorder(["b", "a"])
        assert control.wait_for_completion(timeout=30.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()


class TestPositionOf:
    def test_position_by_object(self):
        control, _sink = build_stream(make_chunks(50), pacing_s=0.01)
        f = PassthroughFilter(name="obj")
        control.add(f)
        assert control.position_of(f) == 0
        assert control.position_of("obj") == 0
        assert control.position_of(0) == 0
        control.shutdown()

    def test_position_of_foreign_filter_raises(self):
        control, _sink = build_stream(make_chunks(50), pacing_s=0.01)
        with pytest.raises(CompositionError):
            control.position_of(PassthroughFilter())
        control.shutdown()


class TestWaitIdle:
    def test_wait_idle_returns_once_chain_drains(self):
        chunks = make_chunks(100)
        control, sink = build_stream(chunks)
        assert control.wait_for_completion(timeout=5.0)
        assert control.wait_idle(timeout=5.0)
        assert control.wait_idle(timeout=5.0, extra=lambda: True)
        control.shutdown()

    def test_wait_idle_times_out_on_false_extra(self):
        control, _sink = build_stream(make_chunks(10))
        control.wait_for_completion(timeout=5.0)
        assert control.wait_idle(timeout=0.2, extra=lambda: False) is False
        control.shutdown()

    def test_concurrent_wait_idle_does_not_stall_composition(self):
        """Regression: a wait_idle waiter must never make data-path threads
        queue behind the composition lock (lock-order inversion) — splices
        performed while a waiter spins must complete at normal speed."""
        import threading

        chunks = make_chunks(3000)
        control, sink = build_stream(chunks, pacing_s=0.0005)
        stop = threading.Event()

        def waiter():
            while not stop.is_set():
                control.wait_idle(timeout=0.2, extra=lambda: False)

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            start = time.monotonic()
            for i in range(5):
                control.add(PassthroughFilter(name=f"f{i}"))
                control.remove(f"f{i}")
            elapsed = time.monotonic() - start
            # Far below the 10 s drain timeout a stalled splice would take.
            assert elapsed < 5.0
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert control.wait_for_completion(timeout=30.0)
        assert sink.data() == b"".join(chunks)
        control.shutdown()


class TestShutdown:
    def test_shutdown_is_idempotent(self):
        control, _sink = build_stream(make_chunks(20))
        control.wait_for_completion(timeout=5.0)
        control.shutdown()
        control.shutdown()
        assert not control.running

    def test_operations_after_shutdown_rejected(self):
        control, _sink = build_stream(make_chunks(20))
        control.wait_for_completion(timeout=5.0)
        control.shutdown()
        with pytest.raises(CompositionError):
            control.add(PassthroughFilter())

    def test_shutdown_stops_inserted_filters(self):
        control, _sink = build_stream(make_chunks(200), pacing_s=0.002)
        f = PassthroughFilter(name="x")
        control.add(f)
        control.shutdown()
        assert not f.running
