"""Unit tests for the Filter / PacketFilter / FilterContainer base classes."""

import threading
import time

import pytest

from repro.core import Filter, FilterContainer, FilterStateError, PacketFilter
from repro.streams import FrameReader, FrameWriter, encode_frame


class DoublingFilter(Filter):
    type_name = "doubling"

    def transform(self, chunk):
        return chunk + chunk


class ExplodingFilter(Filter):
    type_name = "exploding"

    def transform(self, chunk):
        raise RuntimeError("boom")


class TrailerFilter(Filter):
    type_name = "trailer"

    def finalize(self):
        return b"<END>"


class MarkerExplodingFilter(Filter):
    """Passes chunks through until it sees the marker, then raises."""

    type_name = "marker-exploding"

    def transform(self, chunk):
        if chunk == b"BOOM":
            raise RuntimeError("boom")
        return chunk


class TestFilterLifecycle:
    def test_cannot_start_twice(self):
        f = Filter()
        f.start()
        with pytest.raises(FilterStateError):
            f.start()
        f.stop()

    def test_stop_before_start_is_noop(self):
        f = Filter()
        f.stop()  # must not raise

    def test_running_and_finished_flags(self):
        f = Filter()
        assert not f.running and not f.finished
        f.start()
        assert f.running
        f.stop()
        assert not f.running

    def test_set_dis_dos_before_start_only(self):
        from repro.streams import DetachableInputStream, DetachableOutputStream
        f = Filter()
        f.set_dis(DetachableInputStream())
        f.set_dos(DetachableOutputStream())
        f.start()
        with pytest.raises(FilterStateError):
            f.set_dis(DetachableInputStream())
        with pytest.raises(FilterStateError):
            f.set_dos(DetachableOutputStream())
        f.stop()

    def test_paper_style_accessors(self):
        f = Filter(name="myfilter")
        assert f.get_dis() is f.dis
        assert f.get_dos() is f.dos
        assert f.get_id() == "myfilter"

    def test_auto_names_are_unique(self):
        names = {Filter().name for _ in range(50)}
        assert len(names) == 50

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            Filter(read_timeout=0)
        with pytest.raises(ValueError):
            Filter(chunk_size=0)


class TestFilterDataPath:
    def _wire(self, filter_obj):
        """Connect a fresh upstream DOS and downstream DIS to the filter."""
        from repro.streams import DetachableInputStream, DetachableOutputStream
        up = DetachableOutputStream("up")
        up.connect(filter_obj.dis)
        down = DetachableInputStream("down")
        filter_obj.dos.connect(down)
        return up, down

    def test_default_transform_is_passthrough(self):
        f = Filter()
        up, down = self._wire(f)
        f.start()
        up.write(b"payload")
        up.close()
        assert f.wait_finished(timeout=5.0)
        assert down.read(100) == b"payload"

    def test_mid_batch_transform_error_keeps_prior_outputs(self):
        """A transform failing at chunk k of a batch must not discard the
        outputs of chunks 1..k-1 (the per-chunk loop delivered those)."""
        f = MarkerExplodingFilter()
        up, down = self._wire(f)
        # Queue the whole batch before starting so one budgeted read
        # drains all three chunks in a single pump/loop iteration.
        up.write(b"first")
        up.write(b"second")
        up.write(b"BOOM")
        f.start()
        assert f.wait_finished(timeout=5.0)
        assert isinstance(f.error, RuntimeError)
        assert down.read_exactly(11, timeout=2.0) == b"firstsecond"

    def test_mid_batch_transform_error_keeps_prior_outputs_cooperative(self):
        class StubEngine:
            def notify_element(self, element):
                pass

        f = MarkerExplodingFilter()
        up, down = self._wire(f)
        up.write(b"first")
        up.write(b"second")
        up.write(b"BOOM")
        f.bind_engine(StubEngine())
        while not f.finished:
            f.pump()
        assert isinstance(f.error, RuntimeError)
        assert down.read_exactly(11, timeout=2.0) == b"firstsecond"

    def test_custom_transform_applied(self):
        f = DoublingFilter()
        up, down = self._wire(f)
        f.start()
        up.write(b"ab")
        up.close()
        f.wait_finished(timeout=5.0)
        assert down.read(100) == b"abab"

    def test_finalize_emits_trailer_and_closes(self):
        f = TrailerFilter()
        up, down = self._wire(f)
        f.start()
        up.write(b"data|")
        up.close()
        f.wait_finished(timeout=5.0)
        collected = bytearray()
        while True:
            chunk = down.read(100, timeout=0.5)
            if not chunk:
                break
            collected.extend(chunk)
        assert bytes(collected) == b"data|<END>"
        assert down.at_eof()

    def test_eof_propagates_without_finalize_output(self):
        f = Filter()
        up, down = self._wire(f)
        f.start()
        up.close()
        f.wait_finished(timeout=5.0)
        assert down.read(10, timeout=1.0) == b""

    def test_stats_counted(self):
        f = Filter()
        up, down = self._wire(f)
        f.start()
        up.write(b"12345")
        up.close()
        f.wait_finished(timeout=5.0)
        down.read(100)
        snap = f.stats.snapshot()
        assert snap["bytes_in"] == 5
        assert snap["bytes_out"] == 5
        assert snap["errors"] == 0

    def test_transform_exception_recorded(self):
        f = ExplodingFilter()
        up, down = self._wire(f)
        f.start()
        up.write(b"trigger")
        f.wait_finished(timeout=5.0)
        assert isinstance(f.error, RuntimeError)
        assert f.stats.snapshot()["errors"] == 1
        # downstream sees EOF rather than a hang
        assert down.read(10, timeout=1.0) == b""

    def test_transform_returning_multiple_chunks(self):
        class Splitter(Filter):
            type_name = "splitter"

            def transform(self, chunk):
                return [bytes([b]) for b in chunk]

        f = Splitter()
        up, down = self._wire(f)
        f.start()
        up.write(b"xyz")
        up.close()
        f.wait_finished(timeout=5.0)
        assert down.read(100) == b"xyz"

    def test_transform_returning_none_emits_nothing(self):
        class Dropper(Filter):
            type_name = "dropper"

            def transform(self, chunk):
                return None

        f = Dropper()
        up, down = self._wire(f)
        f.start()
        up.write(b"discard me")
        up.close()
        f.wait_finished(timeout=5.0)
        assert down.read(10, timeout=1.0) == b""

    def test_describe_contains_name_type_and_stats(self):
        f = DoublingFilter(name="dbl")
        info = f.describe()
        assert info["name"] == "dbl"
        assert info["type"] == "doubling"
        assert "stats" in info


class TestQuiesceAndHold:
    def test_is_idle_when_no_input(self):
        f = Filter()
        assert f.is_idle()

    def test_quiesce_waits_for_buffered_input(self):
        from repro.streams import DetachableInputStream, DetachableOutputStream
        f = DoublingFilter()
        up = DetachableOutputStream()
        up.connect(f.dis)
        down = DetachableInputStream()
        f.dos.connect(down)
        up.write(b"x" * 1000)
        assert not f.is_idle()
        f.start()
        assert f.quiesce(timeout=5.0)
        assert down.read(5000) == b"x" * 2000
        f.stop()

    def test_hold_and_release(self):
        from repro.streams import DetachableInputStream, DetachableOutputStream
        f = Filter()
        up = DetachableOutputStream()
        up.connect(f.dis)
        down = DetachableInputStream()
        f.dos.connect(down)
        f.start()
        up.write(b"first")
        time.sleep(0.1)
        assert down.read(100) == b"first"

        holder = {}

        def do_hold():
            holder["held"] = f.hold_at_boundary(timeout=2.0)

        t = threading.Thread(target=do_hold)
        t.start()
        time.sleep(0.05)
        up.write(b"second")  # triggers the hold check before emitting
        t.join(timeout=3.0)
        assert holder["held"] is True
        assert f.held
        # While held, nothing is emitted.
        assert down.available() == 0
        f.release_hold()
        time.sleep(0.1)
        assert down.read(100, timeout=1.0) == b"second"
        f.stop()


class PacketDoubler(PacketFilter):
    type_name = "packet-doubler"

    def transform_packet(self, packet):
        return [packet, packet]


class TestPacketFilter:
    def _wire(self, filter_obj):
        from repro.streams import DetachableInputStream, DetachableOutputStream
        up = DetachableOutputStream("up")
        up.connect(filter_obj.dis)
        down = DetachableInputStream("down")
        filter_obj.dos.connect(down)
        return FrameWriter(up), FrameReader(down), up

    def test_packet_passthrough_round_trip(self):
        f = PacketFilter()
        writer, reader, up = self._wire(f)
        f.start()
        writer.write_packet(b"pkt-1")
        writer.write_packet(b"pkt-2")
        up.close()
        f.wait_finished(timeout=5.0)
        assert reader.read_all(timeout=1.0) == [b"pkt-1", b"pkt-2"]

    def test_packet_transform_multiplies(self):
        f = PacketDoubler()
        writer, reader, up = self._wire(f)
        f.start()
        writer.write_packet(b"dup")
        up.close()
        f.wait_finished(timeout=5.0)
        assert reader.read_all(timeout=1.0) == [b"dup", b"dup"]

    def test_packet_stats_count_packets(self):
        f = PacketDoubler()
        writer, reader, up = self._wire(f)
        f.start()
        writer.write_packets([b"a", b"b", b"c"])
        up.close()
        f.wait_finished(timeout=5.0)
        reader.read_all(timeout=1.0)
        snap = f.stats.snapshot()
        assert snap["packets_in"] == 3
        assert snap["packets_out"] == 6

    def test_frames_split_across_chunks_are_reassembled(self):
        f = PacketFilter(chunk_size=3)  # force tiny reads
        from repro.streams import DetachableInputStream, DetachableOutputStream
        up = DetachableOutputStream()
        up.connect(f.dis)
        down = DetachableInputStream()
        f.dos.connect(down)
        reader = FrameReader(down)
        f.start()
        up.write(encode_frame(b"a-long-payload-spanning-reads"))
        up.close()
        f.wait_finished(timeout=5.0)
        assert reader.read_all(timeout=1.0) == [b"a-long-payload-spanning-reads"]


class TestFilterContainer:
    def test_count_and_names(self):
        container = FilterContainer([Filter(name="a"), Filter(name="b")])
        assert container.count() == 2
        assert container.names() == ["a", "b"]

    def test_add_and_get(self):
        container = FilterContainer(name="bundle")
        f = Filter(name="x")
        container.add(f)
        assert container.get(0) is f
        assert container.by_name("x") is f
        assert len(container) == 1

    def test_by_name_missing_raises(self):
        container = FilterContainer()
        with pytest.raises(KeyError):
            container.by_name("ghost")

    def test_iteration(self):
        filters = [Filter(name=f"f{i}") for i in range(3)]
        container = FilterContainer(filters)
        assert list(container) == filters
