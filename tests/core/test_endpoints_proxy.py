"""Unit tests for EndPoints and the Proxy container."""

import socket
import threading
import time

import pytest

from repro.core import (
    CallableSink,
    CallableSource,
    CollectorSink,
    CompositionError,
    IterableSource,
    NullSink,
    Proxy,
    SocketSink,
    SocketSource,
    null_proxy,
)
from repro.filters import UppercaseFilter


class TestIterableSource:
    def test_produces_all_items_then_eof(self):
        source = IterableSource([b"a", b"b", b"c"])
        sink = CollectorSink()
        control = null_proxy(source, sink)
        assert control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"abc"
        assert source.items_produced == 3
        control.shutdown()

    def test_empty_chunks_are_skipped(self):
        source = IterableSource([b"a", b"", b"b"])
        sink = CollectorSink()
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"ab"
        control.shutdown()

    def test_frame_output_mode(self):
        source = IterableSource([b"p1", b"p2"], frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert sink.items() == [b"p1", b"p2"]
        control.shutdown()

    def test_negative_pacing_rejected(self):
        with pytest.raises(ValueError):
            IterableSource([b"x"], pacing_s=-1)


class TestCallableEndpoints:
    def test_callable_source_until_none(self):
        remaining = [b"one", b"two", b"three"]

        def pull():
            return remaining.pop(0) if remaining else None

        source = CallableSource(pull)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert sink.data() == b"onetwothree"
        control.shutdown()

    def test_callable_sink_receives_chunks(self):
        received = []
        source = IterableSource([b"x", b"y"])
        sink = CallableSink(received.append)
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert b"".join(received) == b"xy"
        control.shutdown()

    def test_callable_sink_with_frames(self):
        received = []
        source = IterableSource([b"p1", b"p2", b"p3"], frame_output=True)
        sink = CallableSink(received.append, expect_frames=True)
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert received == [b"p1", b"p2", b"p3"]
        control.shutdown()

    def test_null_sink_discards(self):
        source = IterableSource([b"data"] * 10, frame_output=True)
        sink = NullSink(expect_frames=True)
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        assert sink.items_consumed == 10
        assert sink.stats.snapshot()["packets_in"] == 10
        control.shutdown()

    def test_source_error_closes_stream(self):
        def bad_pull():
            raise ValueError("source exploded")

        source = CallableSource(bad_pull)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        assert control.wait_for_completion(timeout=5.0)
        assert isinstance(source.error, ValueError)
        assert sink.data() == b""
        control.shutdown()

    def test_cooperative_produce_not_called_again_after_none(self):
        """produce() need not be repeatable after signalling exhaustion:
        the cooperative pump must latch the None instead of re-probing."""
        from repro.core.endpoints import SourceEndPoint
        from repro.runtime import EventEngine

        class OneShotSource(SourceEndPoint):
            cooperative_capable = True
            produce_nonblocking = True

            def __init__(self):
                super().__init__(name="one-shot")
                self._items = [b"a", b"b", b"c"]
                self._done = False

            def produce(self):
                if self._done:
                    raise AssertionError("produce() called after None")
                if not self._items:
                    self._done = True
                    return None
                return self._items.pop(0)

        engine = EventEngine()
        source = OneShotSource()
        sink = CollectorSink()
        control = null_proxy(source, sink, engine=engine)
        assert control.wait_for_completion(timeout=5.0)
        assert source.error is None
        assert sink.data() == b"abc"
        control.shutdown()
        engine.shutdown()

    def test_iterator_error_mid_batch_keeps_produced_items(self):
        """An iterator raising after N items must not lose those items to
        the source's batch accumulator — the per-item path delivered each
        of them before erroring, and the batched path must too."""
        def gen():
            for i in range(10):
                yield f"item{i};".encode()
            raise RuntimeError("iterator exploded")

        source = IterableSource(gen())
        sink = CollectorSink()
        control = null_proxy(source, sink)
        assert control.wait_for_completion(timeout=5.0)
        assert isinstance(source.error, RuntimeError)
        assert source.items_produced == 10
        assert sink.data() == b"".join(f"item{i};".encode() for i in range(10))
        control.shutdown()


class TestSocketEndpoints:
    def test_proxy_between_real_sockets(self):
        """Run a proxied byte stream across real loopback TCP sockets."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        received = bytearray()
        done = threading.Event()

        def destination_server():
            conn, _ = listener.accept()
            while True:
                data = conn.recv(4096)
                if not data:
                    break
                received.extend(data)
            conn.close()
            done.set()

        server_thread = threading.Thread(target=destination_server, daemon=True)
        server_thread.start()

        # "Application" socket pair: the app writes into one end; the proxy
        # reads the other end and forwards to the destination server.
        app_writer, proxy_reader = socket.socketpair()
        destination = socket.create_connection(("127.0.0.1", port))

        source = SocketSource(proxy_reader)
        sink = SocketSink(destination)
        control = null_proxy(source, sink)
        control.add(UppercaseFilter())

        app_writer.sendall(b"hello over sockets")
        time.sleep(0.2)
        app_writer.close()

        assert done.wait(timeout=5.0)
        control.shutdown()
        listener.close()
        assert bytes(received) == b"HELLO OVER SOCKETS"


class TestProxy:
    def test_add_and_lookup_streams(self):
        proxy = Proxy("p1")
        control = proxy.add_stream(IterableSource([b"x"]), CollectorSink(),
                                   name="audio")
        assert proxy.stream("audio") is control
        assert proxy.stream_names() == ["audio"]
        proxy.shutdown()

    def test_auto_named_streams(self):
        proxy = Proxy()
        proxy.add_stream(IterableSource([b"x"]), CollectorSink())
        proxy.add_stream(IterableSource([b"y"]), CollectorSink())
        assert proxy.stream_names() == ["stream-0", "stream-1"]
        proxy.shutdown()

    def test_duplicate_stream_name_rejected(self):
        proxy = Proxy()
        proxy.add_stream(IterableSource([b"x"]), CollectorSink(), name="s")
        with pytest.raises(CompositionError):
            proxy.add_stream(IterableSource([b"y"]), CollectorSink(), name="s")
        proxy.shutdown()

    def test_unknown_stream_raises(self):
        proxy = Proxy()
        with pytest.raises(CompositionError):
            proxy.stream("nope")
        proxy.shutdown()

    def test_remove_stream_shuts_it_down(self):
        proxy = Proxy()
        control = proxy.add_stream(IterableSource([b"x"] * 100), CollectorSink(),
                                   name="s")
        proxy.remove_stream("s")
        assert "s" not in proxy.stream_names()
        assert not control.running

    def test_describe_and_snapshot(self):
        proxy = Proxy("described")
        proxy.add_stream(IterableSource([b"x"]), CollectorSink(), name="s")
        time.sleep(0.1)
        description = proxy.describe()
        assert "s" in description
        snapshot = proxy.snapshot()
        assert snapshot["s"]["stream_name"] == "s"
        proxy.shutdown()

    def test_context_manager_shuts_down(self):
        with Proxy("ctx") as proxy:
            control = proxy.add_stream(IterableSource([b"x"] * 50),
                                       CollectorSink(), name="s")
        assert not control.running

    def test_add_stream_after_shutdown_rejected(self):
        proxy = Proxy()
        proxy.shutdown()
        with pytest.raises(CompositionError):
            proxy.add_stream(IterableSource([b"x"]), CollectorSink())
