"""Tests for boundary predicates, chain snapshots, and failure injection."""

import time

import pytest

from repro.core import (
    ChainSnapshot,
    CollectorSink,
    ControlThread,
    Filter,
    IterableSource,
    any_packet_boundary,
    frame_type_boundary,
    gop_boundary,
    i_frame_boundary,
    null_proxy,
    sequence_multiple_boundary,
)
from repro.core.stats import FilterStats
from repro.media import FRAME_B, FRAME_I, FRAME_P, VideoSource, packetize_pcm, ToneSource


def video_packets():
    return [frame.to_packet().pack() for frame in VideoSource(duration=0.5).frames()]


class TestBoundaryPredicates:
    def test_any_packet_boundary_always_true(self):
        assert any_packet_boundary(b"whatever")
        assert any_packet_boundary(b"")

    def test_i_frame_boundary_matches_only_i_frames(self):
        packets = video_packets()
        from repro.media import MediaPacket

        for packet in packets:
            media = MediaPacket.unpack(packet)
            assert i_frame_boundary(packet) == (media.marker == FRAME_I)

    def test_gop_boundary_is_alias_of_i_frame(self):
        assert gop_boundary is i_frame_boundary

    def test_i_frame_boundary_false_for_garbage(self):
        assert not i_frame_boundary(b"not a media packet")

    def test_frame_type_boundary_selects_types(self):
        packets = video_packets()
        predicate = frame_type_boundary(FRAME_P, FRAME_B)
        from repro.media import MediaPacket

        for packet in packets:
            media = MediaPacket.unpack(packet)
            assert predicate(packet) == (media.marker in (FRAME_P, FRAME_B))

    def test_frame_type_boundary_default_allows_all_frames(self):
        predicate = frame_type_boundary()
        assert predicate(video_packets()[0])

    def test_sequence_multiple_boundary(self):
        packets = [p.pack() for p in
                   packetize_pcm(ToneSource(duration=0.3).pcm_bytes())]
        predicate = sequence_multiple_boundary(4)
        from repro.media import MediaPacket

        for packet in packets:
            media = MediaPacket.unpack(packet)
            assert predicate(packet) == (media.sequence % 4 == 0)

    def test_sequence_multiple_boundary_validation(self):
        with pytest.raises(ValueError):
            sequence_multiple_boundary(0)
        predicate = sequence_multiple_boundary(2)
        assert not predicate(b"not media")


class TestStats:
    def test_filter_stats_snapshot(self):
        stats = FilterStats()
        stats.record_input(100, packets=1)
        stats.record_output(50, packets=2)
        stats.record_error()
        snap = stats.snapshot()
        assert snap["bytes_in"] == 100
        assert snap["packets_out"] == 2
        assert snap["errors"] == 1

    def test_chain_snapshot_round_trip(self):
        snapshot = ChainSnapshot(
            stream_name="s", filter_names=["a"], filter_types=["passthrough"],
            filter_stats=[{"bytes_in": 1}], source_stats={"bytes_out": 2},
            sink_stats={"bytes_in": 3}, running=True)
        restored = ChainSnapshot.from_dict(snapshot.to_dict())
        assert restored == snapshot

    def test_live_snapshot_reflects_traffic(self):
        source = IterableSource([b"x" * 100] * 10)
        sink = CollectorSink()
        control = null_proxy(source, sink)
        control.wait_for_completion(timeout=5.0)
        snapshot = control.snapshot()
        assert snapshot.source_stats["bytes_out"] == 1000
        assert snapshot.sink_stats["bytes_in"] == 1000
        control.shutdown()


class ExplodeAfterN(Filter):
    """A filter that fails after processing a fixed number of chunks."""

    type_name = "explode-after-n"

    def __init__(self, explode_after: int, name=None):
        super().__init__(name=name)
        self.explode_after = explode_after
        self._seen = 0

    def transform(self, chunk):
        self._seen += 1
        if self._seen > self.explode_after:
            raise RuntimeError("injected filter failure")
        return chunk


class TestFailureInjection:
    def test_filter_crash_propagates_eof_not_hang(self):
        """A crashing filter must end the stream cleanly, never hang it."""
        source = IterableSource([b"data"] * 100, pacing_s=0.001)
        sink = CollectorSink()
        control = ControlThread(source, sink, auto_start=False)
        bomb = ExplodeAfterN(explode_after=5, name="bomb")
        control.add(bomb)
        control.start()
        assert control.wait_for_completion(timeout=10.0)
        control.shutdown()
        assert isinstance(bomb.error, RuntimeError)
        assert bomb.stats.snapshot()["errors"] == 1
        # Some data was delivered before the failure, none after.
        assert 0 < len(sink.data()) <= 100 * 4

    def test_crashed_filter_can_be_replaced_on_the_fly(self):
        """After a filter dies, the chain can be repaired by removing it."""
        source = IterableSource([b"data"] * 2000, pacing_s=0.001)
        sink = CollectorSink()
        control = ControlThread(source, sink, auto_start=False)
        bomb = ExplodeAfterN(explode_after=3, name="bomb")
        control.add(bomb)
        control.start()
        time.sleep(0.1)   # let it crash
        assert bomb.finished
        # Removing the dead filter re-splices source -> sink; the stream was
        # already terminated downstream of the bomb, but removal must not
        # raise or deadlock and the chain ends up bomb-free.
        control.remove("bomb")
        assert control.filter_names() == []
        control.shutdown()

    def test_healthy_chain_survives_sibling_stream_failure(self):
        """One stream's failure must not affect another stream on the proxy."""
        from repro.core import Proxy

        proxy = Proxy("multi")
        healthy_sink = CollectorSink()
        proxy.add_stream(IterableSource([b"ok"] * 50), healthy_sink, name="good")
        failing_sink = CollectorSink()
        failing = proxy.add_stream(IterableSource([b"bad"] * 50, pacing_s=0.001),
                                   failing_sink, name="bad", auto_start=False)
        failing.add(ExplodeAfterN(explode_after=1, name="bomb"))
        failing.start()
        assert proxy.stream("good").wait_for_completion(timeout=5.0)
        assert healthy_sink.data() == b"ok" * 50
        proxy.shutdown()
