"""Unit tests for media packetisation and the GOP video source."""

import pytest

from repro.media import (
    AudioPacketizer,
    Depacketizer,
    FRAME_B,
    FRAME_I,
    FRAME_P,
    GopPattern,
    MediaPacket,
    MediaPacketError,
    ToneSource,
    TYPE_AUDIO,
    TYPE_VIDEO,
    VideoFrame,
    VideoSource,
    drop_b_frames,
    is_gop_boundary,
    packetize_pcm,
    sequence_numbers,
    stream_bitrate,
)


class TestMediaPacket:
    def test_pack_unpack_round_trip(self):
        packet = MediaPacket(sequence=7, timestamp_ms=140, payload=b"pcm",
                             media_type=TYPE_AUDIO, marker=3)
        assert MediaPacket.unpack(packet.pack()) == packet

    def test_bad_magic_rejected(self):
        packed = MediaPacket(sequence=0, timestamp_ms=0, payload=b"x").pack()
        with pytest.raises(MediaPacketError):
            MediaPacket.unpack(b"\x00" + packed[1:])

    def test_too_short_rejected(self):
        with pytest.raises(MediaPacketError):
            MediaPacket.unpack(b"\xad\x01")

    def test_out_of_range_sequence_rejected(self):
        with pytest.raises(MediaPacketError):
            MediaPacket(sequence=2 ** 33, timestamp_ms=0, payload=b"").pack()


class TestAudioPacketizer:
    def test_paper_format_packet_size(self):
        # 20 ms at 8 kHz stereo 8-bit = 160 frames * 2 bytes = 320 bytes.
        packetizer = AudioPacketizer(ToneSource(duration=1.0))
        assert packetizer.bytes_per_packet == 320

    def test_packet_count_matches_duration(self):
        packetizer = AudioPacketizer(ToneSource(duration=1.0),
                                     packet_duration_ms=20)
        packets = packetizer.packet_list()
        assert len(packets) == 50
        assert sequence_numbers(packets) == list(range(50))

    def test_timestamps_increase_by_packet_duration(self):
        packets = AudioPacketizer(ToneSource(duration=0.2),
                                  packet_duration_ms=20).packet_list()
        assert [p.timestamp_ms for p in packets[:4]] == [0, 20, 40, 60]

    def test_payloads_reassemble_to_original(self):
        source = ToneSource(duration=0.3)
        packets = AudioPacketizer(source).packet_list()
        assert b"".join(p.payload for p in packets) == source.pcm_bytes()

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            AudioPacketizer(ToneSource(duration=0.1), packet_duration_ms=0)

    def test_packetize_pcm_helper(self):
        pcm = ToneSource(duration=0.2).pcm_bytes()
        packets = packetize_pcm(pcm)
        assert b"".join(p.payload for p in packets) == pcm


class TestDepacketizer:
    def _packets(self, count=10):
        return AudioPacketizer(ToneSource(duration=count * 0.02)).packet_list()[:count]

    def test_lossless_reassembly(self):
        packets = self._packets(10)
        depacketizer = Depacketizer()
        for packet in packets:
            depacketizer.add(packet)
        assert depacketizer.received_count() == 10
        assert depacketizer.delivery_ratio(10) == 1.0
        assert depacketizer.reassemble(10) == b"".join(p.payload for p in packets)

    def test_lost_packets_filled_with_silence(self):
        packets = self._packets(10)
        depacketizer = Depacketizer(filler_byte=0x00)
        for packet in packets:
            if packet.sequence != 4:
                depacketizer.add(packet)
        rebuilt = depacketizer.reassemble(10)
        size = len(packets[0].payload)
        assert rebuilt[4 * size:5 * size] == b"\x00" * size
        assert depacketizer.missing_sequences(10) == [4]
        assert depacketizer.delivery_ratio(10) == pytest.approx(0.9)

    def test_duplicates_counted_and_ignored(self):
        packets = self._packets(3)
        depacketizer = Depacketizer()
        depacketizer.add(packets[0])
        depacketizer.add(packets[0])
        assert depacketizer.duplicates == 1
        assert depacketizer.received_count() == 1

    def test_add_raw_handles_malformed(self):
        depacketizer = Depacketizer()
        assert depacketizer.add_raw(b"garbage") is None
        assert depacketizer.malformed == 1
        packet = self._packets(1)[0]
        assert depacketizer.add_raw(packet.pack()) == packet

    def test_reassemble_without_any_packets_raises(self):
        with pytest.raises(MediaPacketError):
            Depacketizer().reassemble(5)

    def test_reassemble_with_explicit_packet_size(self):
        depacketizer = Depacketizer(filler_byte=0xAA)
        assert depacketizer.reassemble(2, packet_size=4) == b"\xaa" * 8


class TestGopPattern:
    def test_default_pattern_structure(self):
        pattern = GopPattern()
        types = [pattern.frame_type_at(i) for i in range(9)]
        assert types[0] == FRAME_I
        assert types.count(FRAME_P) == 2
        assert types.count(FRAME_B) == 6

    def test_sizes_ordered(self):
        pattern = GopPattern()
        assert (pattern.size_for(FRAME_I) > pattern.size_for(FRAME_P)
                > pattern.size_for(FRAME_B))

    @pytest.mark.parametrize("kwargs", [
        {"length": 0}, {"p_interval": 0}, {"frames_per_second": 0},
        {"i_frame_size": 0},
    ])
    def test_invalid_patterns_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GopPattern(**kwargs)


class TestVideoSource:
    def test_frame_count_matches_duration(self):
        video = VideoSource(duration=2.0)
        assert video.total_frames == 60
        assert len(video.frame_list()) == 60

    def test_frames_deterministic(self):
        a = VideoSource(duration=0.5, seed=3).frame(7)
        b = VideoSource(duration=0.5, seed=3).frame(7)
        assert a == b

    def test_first_frame_of_each_gop_is_i(self):
        video = VideoSource(duration=1.0)
        for frame in video.frames():
            if frame.index % video.pattern.length == 0:
                assert frame.is_i_frame

    def test_frame_sizes_match_pattern(self):
        video = VideoSource(duration=0.5)
        for frame in video.frames():
            assert len(frame.payload) == video.pattern.size_for(frame.frame_type)

    def test_out_of_range_frame_rejected(self):
        video = VideoSource(duration=0.1)
        with pytest.raises(IndexError):
            video.frame(video.total_frames)

    def test_packet_round_trip(self):
        video = VideoSource(duration=0.3)
        frame = video.frame(4)
        packet = frame.to_packet()
        assert packet.media_type == TYPE_VIDEO
        assert VideoFrame.from_packet(packet) == frame

    def test_gop_count_and_total_bytes(self):
        video = VideoSource(duration=1.0)
        assert video.gop_count() == 4  # ceil(30 / 9)
        assert video.total_bytes() == sum(len(f.payload) for f in video.frames())

    def test_is_gop_boundary_predicate(self):
        video = VideoSource(duration=0.5)
        packets = list(video.packets())
        boundaries = [p.sequence for p in packets if is_gop_boundary(p)]
        assert boundaries == [0, 9]

    def test_drop_b_frames_reduces_bitrate(self):
        video = VideoSource(duration=1.0)
        frames = video.frame_list()
        reduced = drop_b_frames(frames)
        assert all(f.frame_type in (FRAME_I, FRAME_P) for f in reduced)
        assert (stream_bitrate(reduced, 30)
                < stream_bitrate(frames, 30))

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            VideoSource(duration=0)
