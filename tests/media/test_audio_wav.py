"""Unit tests for audio sources and the WAV container."""

import io

import pytest

from repro.media import (
    AudioFormat,
    NoiseSource,
    PAPER_AUDIO_FORMAT,
    SpeechLikeSource,
    ToneSource,
    WavFormatError,
    pcm_similarity,
    read_wav,
    wav_bytes,
    write_wav,
)


class TestAudioFormat:
    def test_paper_format_data_rate(self):
        # 8000 samples/s * 2 channels * 1 byte = 16000 bytes/s.
        assert PAPER_AUDIO_FORMAT.bytes_per_second == 16000
        assert PAPER_AUDIO_FORMAT.frame_size == 2

    def test_duration_and_bytes_round_trip(self):
        fmt = AudioFormat()
        assert fmt.bytes_for(1.0) == 16000
        assert fmt.duration_of(16000) == pytest.approx(1.0)

    def test_sixteen_bit_format(self):
        fmt = AudioFormat(sample_rate=44100, channels=2, sample_width=2)
        assert fmt.bytes_per_second == 44100 * 4

    @pytest.mark.parametrize("kwargs", [
        {"sample_rate": 0}, {"channels": 0}, {"sample_width": 3},
    ])
    def test_invalid_formats_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AudioFormat(**kwargs)


class TestAudioSources:
    def test_tone_source_length_matches_duration(self):
        source = ToneSource(duration=0.5)
        pcm = source.pcm_bytes()
        assert len(pcm) == PAPER_AUDIO_FORMAT.bytes_for(0.5)

    def test_tone_source_deterministic(self):
        assert ToneSource(duration=0.1).pcm_bytes() == ToneSource(duration=0.1).pcm_bytes()

    def test_read_is_position_independent(self):
        source = ToneSource(duration=0.5)
        full = source.pcm_bytes()
        fragment = source.read(100, 50)
        frame_size = source.format.frame_size
        assert fragment == full[100 * frame_size:150 * frame_size]

    def test_read_past_end_returns_empty(self):
        source = ToneSource(duration=0.1)
        assert source.read(source.total_frames + 1, 10) == b""

    def test_read_clamps_at_end(self):
        source = ToneSource(duration=0.1)
        data = source.read(source.total_frames - 5, 100)
        assert len(data) == 5 * source.format.frame_size

    def test_chunks_cover_whole_stream(self):
        source = ToneSource(duration=0.25)
        chunks = list(source.chunks(chunk_frames=160))
        assert b"".join(chunks) == source.pcm_bytes()

    def test_chunks_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            list(ToneSource(duration=0.1).chunks(0))

    def test_noise_source_seeded(self):
        a = NoiseSource(seed=5, duration=0.1).pcm_bytes()
        b = NoiseSource(seed=5, duration=0.1).pcm_bytes()
        c = NoiseSource(seed=6, duration=0.1).pcm_bytes()
        assert a == b
        assert a != c

    def test_speech_like_source_renders(self):
        source = SpeechLikeSource(duration=0.2)
        assert len(source.pcm_bytes()) == PAPER_AUDIO_FORMAT.bytes_for(0.2)

    def test_sixteen_bit_quantisation(self):
        source = ToneSource(duration=0.05,
                            audio_format=AudioFormat(sample_width=2))
        pcm = source.pcm_bytes()
        assert len(pcm) == source.format.bytes_for(0.05)

    def test_invalid_durations_and_amplitudes(self):
        with pytest.raises(ValueError):
            ToneSource(duration=0)
        with pytest.raises(ValueError):
            ToneSource(amplitude=0)
        with pytest.raises(ValueError):
            NoiseSource(amplitude=1.5)


class TestPcmSimilarity:
    def test_identical_streams_score_one(self):
        pcm = ToneSource(duration=0.1).pcm_bytes()
        assert pcm_similarity(pcm, pcm) == pytest.approx(1.0)

    def test_empty_original_scores_one(self):
        assert pcm_similarity(b"", b"anything") == 1.0

    def test_missing_tail_lowers_score(self):
        pcm = ToneSource(duration=0.1).pcm_bytes()
        score = pcm_similarity(pcm, pcm[:len(pcm) // 2])
        assert 0.4 < score < 0.75

    def test_corrupted_bytes_lower_score(self):
        pcm = ToneSource(duration=0.1).pcm_bytes()
        corrupted = bytes(b ^ 0xFF for b in pcm)
        assert pcm_similarity(pcm, corrupted) < 0.1


class TestWav:
    def test_round_trip_8bit(self):
        pcm = ToneSource(duration=0.1).pcm_bytes()
        blob = wav_bytes(pcm, PAPER_AUDIO_FORMAT)
        parsed = read_wav(blob)
        assert parsed.data == pcm
        assert parsed.format == PAPER_AUDIO_FORMAT
        assert parsed.duration == pytest.approx(0.1)

    def test_round_trip_16bit(self):
        fmt = AudioFormat(sample_rate=16000, channels=1, sample_width=2)
        pcm = ToneSource(duration=0.05, audio_format=fmt).pcm_bytes()
        parsed = read_wav(wav_bytes(pcm, fmt))
        assert parsed.format == fmt
        assert parsed.data == pcm

    def test_write_to_file_and_stream(self, tmp_path):
        pcm = ToneSource(duration=0.05).pcm_bytes()
        path = str(tmp_path / "tone.wav")
        write_wav(path, pcm, PAPER_AUDIO_FORMAT)
        assert read_wav(path).data == pcm
        stream = io.BytesIO()
        write_wav(stream, pcm, PAPER_AUDIO_FORMAT)
        stream.seek(0)
        assert read_wav(stream).data == pcm

    def test_not_a_wav_rejected(self):
        with pytest.raises(WavFormatError):
            read_wav(b"definitely not a wav file")

    def test_truncated_chunk_rejected(self):
        pcm = ToneSource(duration=0.05).pcm_bytes()
        blob = wav_bytes(pcm, PAPER_AUDIO_FORMAT)
        with pytest.raises(WavFormatError):
            read_wav(blob[:30])

    def test_missing_data_chunk_rejected(self):
        blob = wav_bytes(b"", PAPER_AUDIO_FORMAT)
        # strip the data chunk (last 8 bytes of header + 0 bytes payload)
        with pytest.raises(WavFormatError):
            read_wav(blob[:12])
