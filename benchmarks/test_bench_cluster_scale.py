"""Cluster scalability — aggregate throughput vs worker process count.

One Python process tops out at one core; the cluster breaks that ceiling
by sharding streams across N worker OS processes (each a full proxy).
This benchmark measures *capacity*, the number the paper's deployment
story actually needs: how much live, paced traffic a fleet carries.

Each worker is given the same per-worker load — ``STREAMS_PER_WORKER``
live FEC(6,4) streams whose sources pace packets at a fixed real-time
interval, the wired-to-wireless regime of the engine-scale benchmark.
Because every stream is paced, a worker that keeps up finishes in the
pacing-bound ideal time regardless of how many *other* workers exist;
aggregate throughput (total source payload / wall-clock for the whole
fleet to drain) therefore scales with worker count exactly as far as the
fleet actually sustains the added load.  A cluster that fell behind —
GIL contention, control-plane serialisation, shard imbalance — would
stretch the wall-clock and flatten the curve.

Stream names are probed against the shard ring before opening so each
worker hosts exactly ``STREAMS_PER_WORKER`` streams (consistent hashing
balances in aggregate, but small fleets deserve an exact census; the
probe uses the same ring function the cluster itself places with).

The table is written to ``benchmarks/results/cluster_scale.txt`` and the
machine-readable rows to ``BENCH_cluster.json`` next to it.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.cluster import ProxyCluster, ShardRing, StreamSpec
from repro.core.registry import FilterSpec

from benchutil import format_row, results_dir, write_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Worker process counts swept (the fleet sizes of the committed table).
WORKER_COUNTS = [1, 2] if QUICK else [1, 2, 4, 8]

#: Identical per-worker load at every fleet size: capacity scales with
#: workers when each worker carries the same live traffic.
STREAMS_PER_WORKER = 2 if QUICK else 4

#: Packets per stream and the real-time pacing interval (the engine-scale
#: benchmark's loaded-but-live feed), with ~1 KiB media-sized payloads.
PACKETS_PER_STREAM = 25 if QUICK else 75
PACKET_SIZE = 1024
PACKET_INTERVAL_S = 0.008

#: Repetitions per fleet size; the median wall-clock is kept (spawn cost
#: is outside the timed window, but scheduler jitter is not).
REPS = 1 if QUICK else 3

DRAIN_TIMEOUT_S = 120.0


def plan_stream_names(n_workers: int, per_worker: int, tag: str) -> "list[str]":
    """Stream names the shard ring places exactly ``per_worker`` per worker."""
    ring = ShardRing(range(n_workers))
    quota = {worker_id: per_worker for worker_id in range(n_workers)}
    names: "list[str]" = []
    candidate = 0
    while any(quota.values()):
        name = f"cap-{tag}-{candidate}"
        candidate += 1
        owner = ring.worker_for(name)
        if quota[owner]:
            quota[owner] -= 1
            names.append(name)
        if candidate > 100_000:  # pragma: no cover - hash pathology guard
            raise RuntimeError("shard ring never filled the census")
    return names


def run_fleet(n_workers: int) -> "tuple[float, float, float]":
    """Median of ``REPS`` fleet runs: (seconds, MiB/s, streams/s)."""
    elapsed = statistics.median(_run_once(n_workers, rep)
                                for rep in range(REPS))
    n_streams = n_workers * STREAMS_PER_WORKER
    payload = n_streams * PACKETS_PER_STREAM * PACKET_SIZE
    return elapsed, payload / (1024.0 * 1024.0) / elapsed, n_streams / elapsed


def _run_once(n_workers: int, rep: int) -> float:
    names = plan_stream_names(n_workers, STREAMS_PER_WORKER,
                              tag=f"{n_workers}w")
    specs = [
        StreamSpec.from_pattern(
            name, seed=index, packets=PACKETS_PER_STREAM,
            packet_size=PACKET_SIZE, pacing_s=PACKET_INTERVAL_S,
            sink={"kind": "null"},
        ).with_filter(FilterSpec("fec-encoder", {"k": 4, "n": 6}))
        for index, name in enumerate(names)
    ]
    # Spawn/handshake cost stays outside the timed window: the benchmark
    # measures what a running fleet carries, not process start-up.
    with ProxyCluster(workers=n_workers,
                      name=f"bench-{n_workers}w-{rep}") as cluster:
        start = time.perf_counter()
        placement = cluster.open_streams(specs)
        completed = cluster.drain(timeout=DRAIN_TIMEOUT_S)
        elapsed = time.perf_counter() - start
        census: "dict[int, int]" = {}
        for worker_id in placement.values():
            census[worker_id] = census.get(worker_id, 0) + 1
        if set(census.values()) != {STREAMS_PER_WORKER}:
            raise RuntimeError(f"{n_workers}w: unbalanced census {census}")
        for worker_id, streams in completed.items():
            for name, done in streams.items():
                if not done:
                    raise RuntimeError(
                        f"{n_workers}w: stream {name} on worker {worker_id} "
                        "did not complete")
        fleet = cluster.snapshot_sum()
        expected_in = len(specs) * PACKETS_PER_STREAM
        if fleet.source_stats.get("packets_out", 0) != expected_in:
            raise RuntimeError(
                f"{n_workers}w: fleet sources emitted "
                f"{fleet.source_stats.get('packets_out')} packets, "
                f"expected {expected_in}")
    return elapsed


def test_cluster_scale_table():
    ideal_s = PACKETS_PER_STREAM * PACKET_INTERVAL_S
    widths = (8, 8, 9, 10, 11, 8)
    lines = [
        "Cluster scalability: N worker processes, "
        f"{STREAMS_PER_WORKER} live FEC(6,4) streams each",
        f"({PACKETS_PER_STREAM} packets x {PACKET_SIZE} B per stream, paced "
        f"at {PACKET_INTERVAL_S * 1000:.0f} ms/packet -> ideal "
        f"{ideal_s:.2f}s{', quick mode' if QUICK else ''})",
        "",
        format_row(("workers", "streams", "seconds", "MiB/s", "streams/s",
                    "vs 1w"), widths),
    ]
    rows = []
    baseline_mibs = None
    for n_workers in WORKER_COUNTS:
        elapsed, mibs, streams_s = run_fleet(n_workers)
        if baseline_mibs is None:
            baseline_mibs = mibs
        speedup = mibs / baseline_mibs
        rows.append({
            "workers": n_workers,
            "streams": n_workers * STREAMS_PER_WORKER,
            "seconds": round(elapsed, 3),
            "mib_s": round(mibs, 2),
            "streams_per_s": round(streams_s, 1),
            "speedup_vs_1w": round(speedup, 2),
        })
        lines.append(format_row(
            (n_workers, n_workers * STREAMS_PER_WORKER, f"{elapsed:.2f}",
             f"{mibs:.2f}", f"{streams_s:.1f}", f"{speedup:.2f}x"),
            widths))
    lines.append("")
    lines.append("aggregate speedup by fleet size: "
                 + ", ".join(f"{row['workers']}w: {row['speedup_vs_1w']:.2f}x"
                             for row in rows))
    write_table("cluster_scale", lines)

    payload = {
        "benchmark": "cluster_scale",
        "quick": QUICK,
        "streams_per_worker": STREAMS_PER_WORKER,
        "packets_per_stream": PACKETS_PER_STREAM,
        "packet_size": PACKET_SIZE,
        "pacing_s": PACKET_INTERVAL_S,
        "reps": REPS,
        "rows": rows,
    }
    json_path = os.path.join(results_dir(), "BENCH_cluster.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Every fleet drained completely (checked inside _run_once); the
    # committed full-mode table must additionally show the 4-worker fleet
    # carrying at least 3x the 1-worker aggregate — the acceptance pin.
    by_workers = {row["workers"]: row for row in rows}
    if not QUICK and 4 in by_workers:
        assert by_workers[4]["speedup_vs_1w"] >= 3.0, (
            f"4-worker fleet carried only "
            f"{by_workers[4]['speedup_vs_1w']:.2f}x the 1-worker aggregate")
    assert all(row["speedup_vs_1w"] > 0 for row in rows)
