"""E5 — the FEC design space: (n, k), loss rate, redundancy, and group delay.

The paper fixes FEC(6,4) "so as to minimise jitter" and evaluates it at one
operating point; this benchmark maps the surrounding design space so the
choice can be seen in context:

* delivered (reconstructed) fraction as a function of the code and the
  channel loss rate,
* the redundancy overhead each code pays, and
* the group-assembly delay (packets a receiver must wait for before a lost
  packet can be reconstructed) — the jitter the paper minimises by keeping
  groups small.
"""

from __future__ import annotations


from repro.fec import FecGroupDecoder, FecGroupEncoder
from repro.net import BernoulliLoss

from benchutil import format_row, write_table

CODES = [(4, 4), (4, 5), (4, 6), (4, 8), (8, 10), (8, 12), (16, 20)]
LOSS_RATES = [0.01, 0.05, 0.10, 0.20]
PAYLOADS_PER_RUN = 4000
PAYLOAD_SIZE = 320  # the paper's 20 ms audio packet


def run_code_over_loss(k: int, n: int, loss_rate: float, seed: int = 5) -> dict:
    """Push a payload train through encode -> lossy channel -> decode."""
    encoder = FecGroupEncoder(k=k, n=n)
    decoder = FecGroupDecoder()
    channel = BernoulliLoss(loss_rate, seed=seed)
    payload = bytes(PAYLOAD_SIZE)
    delivered = 0
    transmitted = 0
    for index in range(PAYLOADS_PER_RUN):
        for packet in encoder.add(payload):
            transmitted += 1
            if channel.packet_lost():
                continue
            delivered += len(decoder.add(packet))
    for packet in encoder.flush():
        transmitted += 1
        if not channel.packet_lost():
            delivered += len(decoder.add(packet))
    delivered += len(decoder.flush())
    return {
        "delivered_fraction": delivered / PAYLOADS_PER_RUN,
        "overhead": (n - k) / k,
        "transmitted": transmitted,
    }


def test_e5_code_times_loss_sweep(benchmark):
    def sweep():
        return {(k, n, loss): run_code_over_loss(k, n, loss)
                for (k, n) in CODES for loss in LOSS_RATES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"E5: delivered fraction by (n,k) code and loss rate "
        f"({PAYLOADS_PER_RUN} packets of {PAYLOAD_SIZE} B per cell)",
        "",
        format_row(["code", "overhead"] + [f"loss {p:.0%}" for p in LOSS_RATES],
                   [10, 9] + [9] * len(LOSS_RATES)),
    ]
    for (k, n) in CODES:
        row = [f"({n},{k})", f"{(n - k) / k:.0%}"]
        for loss in LOSS_RATES:
            row.append(f"{results[(k, n, loss)]['delivered_fraction']:.4f}")
        lines.append(format_row(row, [10, 9] + [9] * len(LOSS_RATES)))
    lines += [
        "",
        "group-assembly delay (worst-case packets a receiver waits before a "
        "loss can be repaired) = n per group:",
        format_row(["code"] + [f"({n},{k})" for (k, n) in CODES],
                   [6] + [8] * len(CODES)),
        format_row(["delay"] + [n for (_k, n) in CODES], [6] + [8] * len(CODES)),
    ]
    write_table("e5_fec_sweep", lines)

    # Shape assertions.
    for loss in LOSS_RATES:
        no_fec = results[(4, 4, loss)]["delivered_fraction"]
        paper_code = results[(4, 6, loss)]["delivered_fraction"]
        heavy_code = results[(4, 8, loss)]["delivered_fraction"]
        assert paper_code > no_fec                      # redundancy helps
        assert heavy_code >= paper_code - 0.002         # more redundancy >= same
    # The paper's FEC(6,4) essentially erases a 5% loss channel.
    assert results[(4, 6, 0.05)]["delivered_fraction"] > 0.995
    # Larger groups tolerate the same loss with lower overhead.
    assert results[(16, 20, 0.05)]["delivered_fraction"] > 0.99
    assert (16, 20)[1] / 16 < 6 / 4


def test_e5_encode_decode_throughput(benchmark):
    """Raw encode+decode throughput of the paper's FEC(6,4) configuration."""
    payload = bytes(PAYLOAD_SIZE)

    def encode_decode_group():
        encoder = FecGroupEncoder(k=4, n=6)
        decoder = FecGroupDecoder()
        out = []
        for _ in range(4):
            for packet in encoder.add(payload):
                # Drop one data packet per group to exercise real decoding.
                if packet.index == 1:
                    continue
                out.extend(decoder.add(packet))
        return out

    out = benchmark(encode_decode_group)
    assert len(out) == 4
