"""E7 — boundary-aware insertion on a video stream.

Section 3: an FEC filter for video "may be specific to video streams (e.g.,
placing more redundancy in I frames than in B frames)", so "we need to
consider the format of the stream in order to start the FEC filter at a
'frame boundary' in the stream".  This benchmark inserts an FEC encoder into
a live GOP video stream with and without the boundary hold and reports:

* the frame type at which the FEC filter actually started, and
* the latency cost of waiting for the boundary.
"""

from __future__ import annotations

import time


from repro.fec import FecPacket, FecPacketError, unpad_block
from repro.media import FRAME_I, FRAME_TYPE_NAMES, MediaPacket, VideoSource
from repro.proxies import VideoProxy

from benchutil import format_row, write_table


def first_fec_frame_type(delivered):
    """Frame type of the first media packet the FEC encoder wrapped."""
    for raw in delivered:
        try:
            fec = FecPacket.unpack(raw)
        except FecPacketError:
            continue
        if fec.is_data:
            return MediaPacket.unpack(unpad_block(fec.payload)).marker
        if fec.is_uncoded:
            return MediaPacket.unpack(fec.payload).marker
    return None


def run_insertion(use_boundary: bool, seed: int = 0):
    """Insert FEC into a flowing video stream; return (frame type, latency)."""
    video = VideoSource(duration=4.0, seed=seed)  # 120 frames, ~13 GOPs
    delivered = []
    proxy = VideoProxy(video, delivered.append, pacing_s=0.002,
                       name=f"video-proxy-{seed}-{use_boundary}")
    proxy.start()
    time.sleep(0.05)
    started = time.perf_counter()
    if use_boundary:
        proxy.insert_fec_at_gop_boundary(k=3, n=4)
    else:
        from repro.filters import FecEncoderFilter

        proxy.control.add(FecEncoderFilter(k=3, n=4, name="video-fec"),
                          position=0)
    latency = time.perf_counter() - started
    proxy.wait_for_completion(timeout=60.0)
    proxy.shutdown()
    return first_fec_frame_type(delivered), latency


def test_e7_boundary_insertion_starts_on_i_frames(benchmark):
    def run_trials():
        aligned = [run_insertion(True, seed=s) for s in range(5)]
        unaligned = [run_insertion(False, seed=100 + s) for s in range(5)]
        return aligned, unaligned

    aligned, unaligned = benchmark.pedantic(run_trials, rounds=1, iterations=1)

    aligned_types = [FRAME_TYPE_NAMES.get(t, "?") for t, _ in aligned]
    unaligned_types = [FRAME_TYPE_NAMES.get(t, "?") for t, _ in unaligned]
    aligned_latency = sum(latency for _, latency in aligned) / len(aligned)
    unaligned_latency = sum(latency for _, latency in unaligned) / len(unaligned)

    lines = [
        "E7: frame type at which the video FEC filter started (5 trials each)",
        "",
        format_row(["insertion mode", "start frame types", "avg latency (ms)"],
                   [22, 22, 17]),
        format_row(["at GOP boundary", " ".join(aligned_types),
                    f"{1000 * aligned_latency:.1f}"], [22, 22, 17]),
        format_row(["immediate", " ".join(unaligned_types),
                    f"{1000 * unaligned_latency:.1f}"], [22, 22, 17]),
        "",
        "GOP pattern is IBBPBBPBB: an immediate insertion usually lands "
        "mid-GOP, a boundary insertion always starts on an I frame.",
    ]
    write_table("e7_boundary_insertion", lines)

    # Boundary-aligned insertions always start the FEC filter at an I frame.
    assert all(t == FRAME_I for t, _ in aligned)
    # Immediate insertions mostly start mid-GOP (8 of 9 frames are not I).
    assert any(t != FRAME_I for t, _ in unaligned)


def test_e7_boundary_insertion_latency(benchmark):
    """Time a single boundary-aligned insertion on a flowing stream."""

    def insert_once():
        frame_type, latency = run_insertion(True, seed=7)
        assert frame_type == FRAME_I
        return latency

    latency = benchmark.pedantic(insert_once, rounds=3, iterations=1)
    # Waiting for the next I frame can take at most one GOP of pacing time
    # (9 frames x 2 ms) plus scheduling noise.
    assert latency < 2.0
