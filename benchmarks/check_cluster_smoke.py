#!/usr/bin/env python
"""CI smoke gate for the process cluster.

Fails (exit 1) unless a 2-worker :class:`~repro.cluster.ProxyCluster`

1. round-trips streams on *both* workers byte-identically — every
   collected stream's digest must match the regenerated pattern input,
   and a filtered stream (FEC + zlib) must match the single-process
   reference chain run from the same spec; and
2. exposes the whole fleet on the parent's ``/metrics`` endpoint — the
   scrape must carry the ``worker`` label with both worker ids.

Alongside the verdict the gate writes ``BENCH_cluster.json`` (override
the path with ``REPRO_CLUSTER_JSON``) so CI archives the cluster numbers
per commit next to ``BENCH_datapath.json``.

Run as: ``PYTHONPATH=src python benchmarks/check_cluster_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
os.environ.setdefault("REPRO_BENCH_QUICK", "1")  # never touch committed tables
# The parent's /metrics server starts on demand when a cluster is built;
# an ephemeral port keeps parallel CI jobs from colliding.
os.environ.setdefault("REPRO_METRICS_ADDR", "127.0.0.1:0")

WORKERS = 2
STREAMS_PER_WORKER = 2
PACKETS = 40
PACKET_SIZE = 512


def write_report(path: str, payload: dict) -> None:
    """Persist the smoke results for CI artifact upload."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> int:
    from repro.cluster import (
        ProxyCluster,
        StreamSpec,
        digest,
        pattern_packets,
    )
    from repro.core.registry import FilterSpec
    from repro.obs.exporter import default_server

    from test_bench_cluster_scale import plan_stream_names

    failures = []
    names = plan_stream_names(WORKERS, STREAMS_PER_WORKER, tag="smoke")
    specs = [StreamSpec.from_pattern(name, seed=index, packets=PACKETS,
                                     packet_size=PACKET_SIZE)
             for index, name in enumerate(names)]
    # One spec runs a real chain; its digest is pinned to the
    # single-process reference — the cluster must be byte-transparent.
    specs[0] = specs[0].with_filter(
        FilterSpec("fec-encoder", {"k": 4, "n": 6, "start_group_id": 0})
    ).with_filter(FilterSpec("zlib-compress", {"level": 6}))

    start = time.perf_counter()
    with ProxyCluster(workers=WORKERS, name="smoke") as cluster:
        placement = cluster.open_streams(specs)
        cluster.drain(timeout=60.0)
        elapsed = time.perf_counter() - start
        if set(placement.values()) != set(range(WORKERS)):
            failures.append(f"streams landed on {sorted(set(placement.values()))}, "
                            f"expected all of {list(range(WORKERS))}")
        for spec in specs:
            result = cluster.stream_result(spec.name)
            if spec.filters:
                expected = digest(spec.expected_output())
                label = "reference-chain"
            else:
                expected = digest(pattern_packets(
                    spec.source["seed"], PACKETS, PACKET_SIZE))
                label = "pattern"
            if result["digest"] != expected:
                failures.append(
                    f"stream {spec.name} ({label}) digest mismatch")
        server = default_server()
        if server is None:
            failures.append("no /metrics server came up")
            scrape = ""
        else:
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=10.0) as response:
                scrape = response.read().decode("utf-8")
        worker_labels = [f'worker="{worker_id}"'
                         for worker_id in range(WORKERS)]
        missing = [label for label in worker_labels if label not in scrape]
        if missing:
            failures.append(f"/metrics scrape is missing {missing}")
        fleet = cluster.snapshot_sum()

    total_payload = len(specs) * PACKETS * PACKET_SIZE
    report = {
        "workers": WORKERS,
        "streams": len(specs),
        "packets_per_stream": PACKETS,
        "packet_size": PACKET_SIZE,
        "round_trip_seconds": round(elapsed, 3),
        "round_trip_mib_s": round(
            total_payload / (1024.0 * 1024.0) / elapsed, 3),
        "fleet_sink_packets": fleet.sink_stats.get("packets_in", 0),
        "metrics_worker_labels": worker_labels,
        "failures": failures,
        "passed": not failures,
    }
    write_report(os.environ.get("REPRO_CLUSTER_JSON", "BENCH_cluster.json"),
                 report)
    print(f"workers              : {WORKERS}")
    print(f"streams (both shards): {len(specs)}")
    print(f"round trip           : {elapsed:8.3f} s")
    print(f"fleet sink packets   : {report['fleet_sink_packets']}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK: cluster round trip byte-identical, /metrics shows both workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
