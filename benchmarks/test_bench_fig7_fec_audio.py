"""FIG7 — reproduce Figure 7: FEC(6,4) audio delivery 25 m from the AP.

The paper transmitted ~104 s of PCM audio (8 kHz, two 8-bit channels) through
the FEC audio proxy to three wireless laptops 25 m from the access point and
plotted, per 432-packet window, the percentage of packets received raw and
the percentage available after FEC reconstruction.  Paper averages: 98.54%
received, 99.98% reconstructed.

This benchmark regenerates the same series on the simulated testbed (the
distance-calibrated loss model) and records the averages.
"""

from __future__ import annotations


from repro.media import ToneSource
from repro.net import FIG7_WINDOW_SIZE
from repro.proxies import run_fec_audio_experiment

from benchutil import format_row, write_table

#: The paper's trace covers sequence numbers up to ~5184 = 12 windows of 432.
PAPER_TRACE_PACKETS = 5184
PAPER_RECEIVED_PERCENT = 98.54
PAPER_RECONSTRUCTED_PERCENT = 99.98

#: 5184 packets x 20 ms per packet.
TRACE_DURATION_S = PAPER_TRACE_PACKETS * 0.020


def run_trace(seed: int = 2001):
    return run_fec_audio_experiment(
        audio_source=ToneSource(duration=TRACE_DURATION_S),
        duration_s=TRACE_DURATION_S,
        distance_m=25.0,
        receiver_count=3,
        k=4, n=6,
        seed=seed)


def test_fig7_reproduction_table(benchmark):
    """Regenerate the Figure 7 series and check the paper's headline shape."""
    result = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    lines = [
        "FIG7: FEC(6,4) audio multicast, 25 m from access point, 3 receivers",
        f"total source packets: {result.total_packets}",
        "",
        format_row(["window-start", "% received", "% reconstructed"], [14, 12, 16]),
    ]
    # Windowed series for the first receiver (the paper plots one receiver).
    first_report = next(iter(result.reports.values()))
    for point in first_report.windowed(FIG7_WINDOW_SIZE):
        lines.append(format_row(
            [point.window_start, f"{point.received_percent:.2f}",
             f"{point.reconstructed_percent:.2f}"], [14, 12, 16]))
    lines += [
        "",
        format_row(["", "measured", "paper"], [24, 10, 10]),
        format_row(["avg % received", f"{result.average_received_percent():.2f}",
                    f"{PAPER_RECEIVED_PERCENT:.2f}"], [24, 10, 10]),
        format_row(["avg % reconstructed",
                    f"{result.average_reconstructed_percent():.2f}",
                    f"{PAPER_RECONSTRUCTED_PERCENT:.2f}"], [24, 10, 10]),
        format_row(["packets on air", result.packets_on_air, "-"], [24, 10, 10]),
        format_row(["airtime (s)", f"{result.airtime_s:.2f}", "-"], [24, 10, 10]),
    ]
    write_table("fig7_fec_audio", lines)

    # Shape assertions: raw delivery close to the paper's 98.54%, and FEC
    # repairs essentially everything (>= 99.8%, paper reports 99.98%).
    assert result.total_packets == PAPER_TRACE_PACKETS
    assert 97.5 <= result.average_received_percent() <= 99.5
    assert result.average_reconstructed_percent() >= 99.8
    assert (result.average_reconstructed_percent()
            >= result.average_received_percent())
    # Every window's reconstructed series dominates its received series.
    for report in result.reports.values():
        for point in report.windowed(FIG7_WINDOW_SIZE):
            assert point.reconstructed_percent >= point.received_percent


def test_fig7_benchmark_runtime(benchmark):
    """Time one (shorter) run of the Figure 7 experiment pipeline."""

    def run_short():
        return run_fec_audio_experiment(
            audio_source=ToneSource(duration=10.0), duration_s=10.0,
            distance_m=25.0, receiver_count=3, seed=7)

    result = benchmark.pedantic(run_short, rounds=3, iterations=1)
    assert result.average_reconstructed_percent() >= result.average_received_percent()
