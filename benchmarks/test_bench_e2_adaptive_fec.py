"""E2 — the Section 3 scenario: demand-driven FEC as the user walks away.

A user starts near the access point (clean link, no FEC) and walks to a
conference room down the hall (rising loss).  The loss-rate observer notices
the degradation and the FEC responder inserts the encoder into the running
stream; the benchmark records when FEC engaged, how delivery evolved per
step, and compares against the unprotected baseline and a hysteresis-free
policy (the ablation the paper's design implies).
"""

from __future__ import annotations


from repro.net import LinearWalk
from repro.rapidware import FecPolicy, run_adaptive_walk_experiment

from benchutil import format_row, write_table

WALK = LinearWalk(start_distance_m=5.0, end_distance_m=42.0, duration_s=16.0)


def run_adaptive(adaptive=True, policy=None, seed=41):
    return run_adaptive_walk_experiment(walk=WALK, adaptive=adaptive,
                                        policy=policy, wlan_seed=seed)


def test_e2_adaptive_walk_reproduction(benchmark):
    adaptive = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    baseline = run_adaptive(adaptive=False)

    lines = [
        "E2: adaptive FEC insertion during a walk away from the access point",
        f"walk: {WALK.start_distance_m:.0f} m -> {WALK.end_distance_m:.0f} m "
        f"over {WALK.duration_s:.0f} s of audio",
        "",
        format_row(["t (s)", "dist (m)", "obs loss", "FEC", "code"],
                   [6, 9, 9, 5, 8]),
    ]
    for step in adaptive.steps:
        lines.append(format_row(
            [f"{step.time_s:.1f}", f"{step.distance_m:.1f}",
             f"{step.observed_loss_rate:.3f}", "on" if step.fec_active else "off",
             str(step.fec_code or "-")], [6, 9, 9, 5, 8]))
    lines += [
        "",
        format_row(["", "adaptive", "no FEC (baseline)"], [26, 10, 18]),
        format_row(["% received (raw)",
                    f"{adaptive.report.received_percent:.2f}",
                    f"{baseline.report.received_percent:.2f}"], [26, 10, 18]),
        format_row(["% delivered to app",
                    f"{adaptive.report.reconstructed_percent:.2f}",
                    f"{baseline.report.reconstructed_percent:.2f}"], [26, 10, 18]),
        format_row(["FEC insertions", adaptive.insertions,
                    baseline.insertions], [26, 10, 18]),
        format_row(["FEC removals", adaptive.removals, baseline.removals],
                   [26, 10, 18]),
        format_row(["code upgrades", adaptive.upgrades, baseline.upgrades],
                   [26, 10, 18]),
        format_row(["first FEC activation (s)",
                    f"{adaptive.fec_activation_time():.1f}"
                    if adaptive.fec_activation_time() is not None else "-",
                    "-"], [26, 10, 18]),
    ]
    write_table("e2_adaptive_fec", lines)

    # Shape: FEC engages only once loss appears, and adaptive delivery beats
    # the unprotected baseline while the raw channel is identical.
    activation = adaptive.fec_activation_time()
    assert activation is not None and activation > 0.0
    assert adaptive.insertions >= 1
    assert baseline.insertions == 0
    assert (adaptive.report.reconstructed_percent
            > baseline.report.reconstructed_percent)
    near_steps = [s for s in adaptive.steps if s.distance_m < 10.0]
    assert not any(s.fec_active for s in near_steps)


def test_e2_hysteresis_ablation(benchmark):
    """Without a hysteresis band the system reconfigures far more often."""
    with_hysteresis = FecPolicy(insert_threshold=0.01, remove_threshold=0.002)
    without_hysteresis = FecPolicy(insert_threshold=0.01, remove_threshold=0.01)

    def run_both():
        a = run_adaptive(policy=with_hysteresis, seed=23)
        b = run_adaptive(policy=without_hysteresis, seed=23)
        return a, b

    stable, thrashing = benchmark.pedantic(run_both, rounds=1, iterations=1)
    stable_actions = stable.insertions + stable.removals
    thrash_actions = thrashing.insertions + thrashing.removals
    lines = [
        "E2 ablation: adaptation actions with and without hysteresis",
        format_row(["policy", "insertions", "removals", "total"], [22, 11, 9, 6]),
        format_row(["with hysteresis", stable.insertions, stable.removals,
                    stable_actions], [22, 11, 9, 6]),
        format_row(["without hysteresis", thrashing.insertions,
                    thrashing.removals, thrash_actions], [22, 11, 9, 6]),
    ]
    write_table("e2_hysteresis_ablation", lines)
    assert stable_actions <= thrash_actions
    assert stable.report.reconstructed_percent >= 95.0
