"""E1 — dynamic composition on a running stream (Figure 4's central claim).

The paper's mechanism promises that filters can be inserted, deleted and
reordered on a *running* data stream without losing, duplicating or
reordering data and without disturbing the stream's endpoints.  This
benchmark measures:

* the latency of an insert and of a remove performed on a live stream
  (pause -> drain -> reconnect -> resume), and
* data integrity across a schedule of repeated reconfigurations, comparing
  the paper's pause-then-splice protocol with a deliberately naive splice
  (detach without draining) to show why ``pause()`` exists.
"""

from __future__ import annotations

import threading
import time


from repro.core import CollectorSink, ControlThread, IterableSource
from repro.filters import PassthroughFilter, UppercaseFilter
from repro.streams import DetachableInputStream, DetachableOutputStream

from benchutil import format_row, write_table

CHUNK_COUNT = 3000
CHUNKS = [f"chunk-{i:05d};".encode() for i in range(CHUNK_COUNT)]


def build_live_stream(pacing_s=0.0005):
    source = IterableSource(list(CHUNKS), pacing_s=pacing_s)
    sink = CollectorSink()
    control = ControlThread(source, sink, name="e1", auto_start=True)
    return control, sink


def test_e1_insert_remove_latency(benchmark):
    """Time one insert+remove cycle on a live stream."""
    control, sink = build_live_stream(pacing_s=0.0005)
    time.sleep(0.05)
    counter = {"i": 0}

    def insert_and_remove():
        name = f"pt-{counter['i']}"
        counter["i"] += 1
        control.add(PassthroughFilter(name=name), position=0)
        control.remove(name)

    benchmark.pedantic(insert_and_remove, rounds=20, iterations=1)
    assert control.wait_for_completion(timeout=60.0)
    data = sink.data()
    control.shutdown()
    assert data == b"".join(CHUNKS)


def test_e1_integrity_under_reconfiguration_schedule(benchmark):
    """Repeatedly insert/remove/reorder while data flows; nothing may be lost."""

    def run_schedule():
        control, sink = build_live_stream(pacing_s=0.0003)
        operations = 0
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline and control.source.running:
            control.add(UppercaseFilter(name="u"), position=0)
            control.add(PassthroughFilter(name="p"))
            control.reorder(["p", "u"])
            control.remove("u")
            control.remove("p")
            operations += 5
        control.wait_for_completion(timeout=60.0)
        data = sink.data()
        control.shutdown()
        return operations, data

    operations, data = benchmark.pedantic(run_schedule, rounds=1, iterations=1)
    expected = b"".join(CHUNKS)
    lines = [
        "E1: dynamic composition integrity",
        f"reconfiguration operations while streaming: {operations}",
        f"bytes expected: {len(expected)}   bytes delivered: {len(data)}",
        f"content intact (case-insensitive): {data.lower() == expected.lower()}",
    ]
    write_table("e1_dynamic_composition", lines)
    assert len(data) == len(expected)
    assert data.lower() == expected.lower()
    assert operations >= 5


def test_e1_pause_splice_vs_naive_splice(benchmark):
    """Ablation: the drain-before-reconnect protocol vs a naive splice.

    A naive splice (detach the DOS while data is still buffered downstream,
    then reconnect through a new filter) strands whatever bytes were in
    flight.  The paper's pause() protocol waits for the buffer to drain and
    therefore never loses a byte.
    """

    def run(protocol: str) -> int:
        """Return the number of bytes lost by a mid-stream splice."""
        dos = DetachableOutputStream("src")
        dis = DetachableInputStream("dst", capacity=None)
        dos.connect(dis)
        total = 200
        consumed = bytearray()
        for i in range(total // 2):
            dos.write(f"{i:06d};".encode())
        # A slow reader drains in the background.
        stop = threading.Event()

        def reader():
            # A deliberately slow consumer: the splice always happens while
            # bytes are still buffered downstream.
            while not stop.is_set() or dis.available():
                data = dis.read(64) if dis.available() else b""
                if data:
                    consumed.extend(data)
                time.sleep(0.002)

        thread = threading.Thread(target=reader)
        thread.start()
        if protocol == "pause":
            dos.pause(drain_timeout=10.0)     # waits for the reader to drain
            dos.reconnect(dis)
        else:
            dos.detach()                      # naive: drop the link immediately
            dis.buffer.clear()                # in-flight bytes are stranded/lost
            dos.reconnect(dis)
        for i in range(total // 2, total):
            dos.write(f"{i:06d};".encode())
        time.sleep(0.05)
        stop.set()
        thread.join(timeout=5.0)
        expected = total * 7
        return expected - len(consumed)

    lost_pause = run("pause")
    lost_naive = run("naive")
    benchmark.pedantic(lambda: run("pause"), rounds=3, iterations=1)
    lines = [
        "E1 ablation: pause-then-splice vs naive splice (200 x 7-byte records)",
        format_row(["protocol", "bytes lost"], [20, 12]),
        format_row(["pause (paper)", lost_pause], [20, 12]),
        format_row(["naive detach", lost_naive], [20, 12]),
    ]
    write_table("e1_pause_vs_naive", lines)
    assert lost_pause == 0
    assert lost_naive > 0
