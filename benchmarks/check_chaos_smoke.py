#!/usr/bin/env python
"""CI smoke gate for the fault-injection plane and stream supervision.

Fails (exit 1) unless a 2-worker :class:`~repro.cluster.ProxyCluster`
survives two injected faults in one run:

1. a **filter crash** — a ``fault-injection`` filter rides a stream spec
   to its worker under a ``restart-filter`` policy, crashes mid-stream,
   and must be restarted in place (``filter-restart`` event, a non-zero
   ``repro_stream_filter_restarts_total`` on the parent's merged
   ``/metrics`` scrape, and a completed stream); and
2. a **worker kill** — the *other* worker is crashed outright mid-flight
   and must be respawned with its stream replayed byte-identically
   (``worker-exit`` + ``worker-restart`` events sharing one correlation
   id, and a digest match after the replay).

Every recovery event must land in the JSONL event log the run writes
(``BENCH_chaos_events.jsonl``, override with ``REPRO_CHAOS_EVENTS``) —
that file is the uploaded CI artifact and the gate's evidence.

Run as: ``PYTHONPATH=src python benchmarks/check_chaos_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
os.environ.setdefault("REPRO_BENCH_QUICK", "1")  # never touch committed tables
os.environ.setdefault("REPRO_METRICS_ADDR", "127.0.0.1:0")

#: The shared JSONL sink: the parent and every worker process append to
#: it, so one file holds the whole incident timeline.  Must be set before
#: any repro import builds the process event log.
EVENTS_PATH = os.environ.get("REPRO_CHAOS_EVENTS", "BENCH_chaos_events.jsonl")
if __name__ == "__main__":
    # Guarded because the spawn start method re-imports __main__ in every
    # worker process (as __mp_main__): an unguarded truncate here would
    # wipe the shared log each time a worker starts.
    with open(EVENTS_PATH, "w", encoding="utf-8"):
        pass  # start from an empty log; EventLog appends
os.environ["REPRO_EVENT_LOG"] = EVENTS_PATH

WORKERS = 2
SURVIVOR_PACKETS = 60
VICTIM_PACKETS = 300
PACKET_SIZE = 256


def write_report(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_events(path: str):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def main() -> int:
    from repro.cluster import ProxyCluster, StreamSpec, digest, pattern_packets
    from repro.cluster.rpc import RpcError
    from repro.core import ErrorPolicy
    from repro.core.registry import FilterSpec
    from repro.obs.exporter import default_server

    failures = []
    start = time.perf_counter()
    with ProxyCluster(workers=WORKERS, name="chaos-smoke") as cluster:
        # Stream 1: the survivor — crashes its own filter at chunk 5 and
        # must live through it under restart-filter supervision.
        survivor = StreamSpec.from_pattern(
            "chaos-survivor", seed=11, packets=SURVIVOR_PACKETS,
            packet_size=PACKET_SIZE, pacing_s=0.01,
        ).with_filter(FilterSpec(
            type_name="fault-injection", args={"crash_at_chunk": 5},
            name="chaos-boom",
        )).with_policy(ErrorPolicy(mode="restart-filter",
                                   backoff_s=0.01).to_dict())
        survivor_worker = cluster.open_stream(survivor)

        # Stream 2: the victim — a plain paced pattern stream on the
        # *other* worker, still mid-flight when that worker is killed.
        victim_worker = next(w for w in cluster.worker_ids
                             if w != survivor_worker)
        victim_name = next(
            f"chaos-victim-{i}" for i in range(1000)
            if cluster.worker_for(f"chaos-victim-{i}") == victim_worker)
        victim = StreamSpec.from_pattern(
            victim_name, seed=23, packets=VICTIM_PACKETS,
            packet_size=PACKET_SIZE, pacing_s=0.005)
        cluster.open_stream(victim)

        # Injected fault #2: kill the victim's worker process outright.
        handle = cluster.worker(victim_worker)
        old_pid = handle.pid
        time.sleep(0.3)  # let the victim stream get properly under way
        try:
            handle.request("crash", timeout=5.0)
            failures.append("crash request unexpectedly returned")
        except (RpcError, TimeoutError, OSError):
            pass
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and (
                handle.pid == old_pid or handle.connection is None):
            time.sleep(0.05)
        if handle.pid == old_pid:
            failures.append("killed worker was never respawned")

        cluster.drain(timeout=60.0)
        elapsed = time.perf_counter() - start

        # The victim replayed from its spec: byte-identical delivery.
        result = cluster.stream_result(victim_name)
        expected = digest(pattern_packets(23, VICTIM_PACKETS, PACKET_SIZE))
        if result["digest"] != expected:
            failures.append(f"replayed stream {victim_name} digest mismatch")

        # The survivor completed despite its filter crashing.
        done = cluster.wait_stream("chaos-survivor", timeout=10.0)
        if not done:
            failures.append("supervised stream never completed")

        # Parent /metrics must aggregate the worker's restart counter.
        server = default_server()
        scrape = ""
        if server is None:
            failures.append("no /metrics server came up")
        else:
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=10.0) as response:
                scrape = response.read().decode("utf-8")
        restart_samples = [
            line for line in scrape.splitlines()
            if line.startswith("repro_stream_filter_restarts_total")
            and not line.startswith("#")]
        if not any(float(line.rsplit(" ", 1)[-1]) >= 1.0
                   for line in restart_samples):
            failures.append(
                "repro_stream_filter_restarts_total missing or zero "
                "in the parent /metrics scrape")

    # Event-log evidence, from the artifact file itself.
    events = read_events(EVENTS_PATH)
    kinds = {}
    for record in events:
        kinds.setdefault(record.get("event"), []).append(record)
    filter_restarts = [r for r in kinds.get("filter-restart", [])
                       if r.get("stream") == "chaos-survivor"]
    if not filter_restarts:
        failures.append("no filter-restart event for the supervised stream")
    exits = kinds.get("worker-exit", [])
    restarts = kinds.get("worker-restart", [])
    if not exits:
        failures.append("no worker-exit event for the killed worker")
    if not restarts:
        failures.append("no worker-restart event for the killed worker")
    if exits and restarts and not (
            {r.get("cid") for r in exits} & {r.get("cid") for r in restarts}):
        failures.append("worker-exit and worker-restart cids do not overlap")
    replayed = [name for r in restarts
                for name in r.get("replayed_streams", [])]
    if victim_name not in replayed:
        failures.append(f"{victim_name} missing from replayed_streams")

    report = {
        "workers": WORKERS,
        "survivor_packets": SURVIVOR_PACKETS,
        "victim_packets": VICTIM_PACKETS,
        "elapsed_seconds": round(elapsed, 3),
        "events_total": len(events),
        "filter_restart_events": len(filter_restarts),
        "worker_exit_events": len(exits),
        "worker_restart_events": len(restarts),
        "events_path": EVENTS_PATH,
        "failures": failures,
        "passed": not failures,
    }
    write_report(os.environ.get("REPRO_CHAOS_JSON", "BENCH_chaos.json"),
                 report)
    print(f"workers               : {WORKERS}")
    print(f"elapsed               : {elapsed:8.3f} s")
    print(f"events logged         : {len(events)}")
    print(f"filter-restart events : {len(filter_restarts)}")
    print(f"worker-exit/restart   : {len(exits)}/{len(restarts)}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK: filter crash restarted in place, killed worker respawned "
          "and replayed, evidence in the event log")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
