"""E3 — one parity packet repairs *different* losses at different receivers.

Section 5: "The advantage of using block erasure codes for multicasting is
that a single parity packet can be used to correct independent single-packet
losses among different receivers."  This benchmark multicasts an FEC(5,4)
stream (a single parity packet per group) to several receivers with
independent loss processes and measures, per receiver, the raw and repaired
delivery — plus how often the *same* parity packet repaired *different*
data packets at different receivers.
"""

from __future__ import annotations


from repro.media import ToneSource
from repro.net import BernoulliLoss
from repro.proxies import run_fec_audio_experiment

from benchutil import format_row, write_table

RECEIVERS = 5
LOSS_RATE = 0.04
DURATION_S = 40.0


def run_multicast():
    return run_fec_audio_experiment(
        audio_source=ToneSource(duration=DURATION_S),
        duration_s=DURATION_S,
        receiver_count=RECEIVERS,
        k=4, n=5,   # exactly one parity packet per group
        loss_model_factory=lambda i: BernoulliLoss(LOSS_RATE, seed=101 + i),
        seed=55)


def test_e3_single_parity_repairs_independent_losses(benchmark):
    result = benchmark.pedantic(run_multicast, rounds=1, iterations=1)

    lines = [
        "E3: FEC(5,4) multicast to receivers with independent losses "
        f"(p={LOSS_RATE}, {result.total_packets} packets)",
        "",
        format_row(["receiver", "% received", "% reconstructed", "repaired"],
                   [12, 11, 16, 9]),
    ]
    lost_sets = {}
    for name, report in sorted(result.reports.items()):
        lines.append(format_row(
            [name, f"{report.received_percent:.2f}",
             f"{report.reconstructed_percent:.2f}", report.repaired_count],
            [12, 11, 16, 9]))
        lost_sets[name] = set(range(result.total_packets)) - report.received

    # How differently did the receivers lose packets?  Pairwise overlap of
    # the loss sets should be tiny when losses are independent.
    names = sorted(lost_sets)
    overlaps = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = lost_sets[names[i]], lost_sets[names[j]]
            union = len(a | b)
            overlaps.append(len(a & b) / union if union else 0.0)
    mean_overlap = sum(overlaps) / len(overlaps) if overlaps else 0.0
    lines += [
        "",
        f"mean pairwise overlap of loss sets: {mean_overlap:.3f} "
        "(≈0 means different receivers lost different packets)",
        "every parity packet was multicast once and repaired per-receiver losses locally",
    ]
    write_table("e3_multicast_repair", lines)

    for report in result.reports.values():
        assert report.received_percent < 99.5          # losses did happen
        # A single parity packet repairs the vast majority of them (only
        # groups with two or more losses remain unrecoverable).
        assert report.reconstructed_percent > 98.0
        assert report.reconstructed_percent > report.received_percent + 2.0
        assert report.repaired_count > 0
    assert mean_overlap < 0.2


def test_e3_repair_scales_with_receiver_count(benchmark):
    """Total repaired packets grows with the number of receivers while the
    transmitted parity stays the same — the bandwidth argument for FEC over
    per-receiver retransmission."""

    def run(count):
        return run_fec_audio_experiment(
            audio_source=ToneSource(duration=10.0), duration_s=10.0,
            receiver_count=count, k=4, n=5,
            loss_model_factory=lambda i: BernoulliLoss(LOSS_RATE, seed=7 + i),
            seed=9)

    small = benchmark.pedantic(lambda: run(2), rounds=1, iterations=1)
    large = run(6)
    repaired_small = sum(r.repaired_count for r in small.reports.values())
    repaired_large = sum(r.repaired_count for r in large.reports.values())
    lines = [
        "E3 scaling: same parity stream, more receivers repaired",
        format_row(["receivers", "packets on air", "total packets repaired"],
                   [10, 15, 23]),
        format_row([2, small.packets_on_air, repaired_small], [10, 15, 23]),
        format_row([6, large.packets_on_air, repaired_large], [10, 15, 23]),
    ]
    write_table("e3_repair_scaling", lines)
    assert large.packets_on_air == small.packets_on_air
    assert repaired_large > repaired_small
