"""E6 — the cost of the composition mechanism itself.

Detachable streams buy dynamic recomposition; this benchmark measures what
they cost relative to a plain ``queue.Queue`` hand-off, and how throughput
scales with the length of a pass-through filter chain (each extra filter
adds one thread and one buffered hop, exactly as in the paper's Java
implementation).

Two tables are produced:

* the headline comparison (queue baseline, bare pipe, null proxy, 4-filter
  chain) at the canonical 8 KiB chunk size, each row the median of several
  runs so scheduler noise cannot skew the committed numbers;
* a chunk-size sweep (512 B / 8 KiB / 64 KiB) that measures both buffer
  read paths: *aligned* reads (the reader's budget covers whole written
  chunks, which the chunk-deque buffer pops back out zero-copy) and
  *misaligned* reads (smaller than a chunk, forcing the slice/coalesce
  path).
"""

from __future__ import annotations

import os
import queue
import statistics
import threading
import time

import pytest

from repro.core import ControlThread, IterableSource, NullSink
from repro.filters import PassthroughFilter
from repro.streams import make_pipe

from benchutil import format_row, write_table

TRANSFER_BYTES = 4 * 1024 * 1024
CHUNK_SIZE = 8192
CHUNKS = [bytes(CHUNK_SIZE) for _ in range(TRANSFER_BYTES // CHUNK_SIZE)]

#: The sweep's chunk sizes: sub-MTU datagrams, the filter default, and the
#: bulk size used by socket endpoints.
SWEEP_CHUNK_SIZES = [512, 8192, 65536]

#: Median-of-N repeats for the committed tables (1 in quick mode).
def _repeats() -> int:
    return 1 if os.environ.get("REPRO_BENCH_QUICK") else 3


def _make_chunks(chunk_size: int):
    return [bytes(chunk_size) for _ in range(TRANSFER_BYTES // chunk_size)]


def transfer_through_pipe(chunks=CHUNKS, read_size: int = 65536) -> int:
    """Move the payload through one detachable DOS/DIS pair."""
    dos, dis = make_pipe(capacity=256 * 1024)
    received = {"n": 0}

    def reader():
        while True:
            data = dis.read(read_size, timeout=5.0)
            if not data:
                return
            received["n"] += len(data)

    thread = threading.Thread(target=reader)
    thread.start()
    for chunk in chunks:
        dos.write(chunk)
    dos.close()
    thread.join(timeout=30.0)
    return received["n"]


def transfer_through_queue() -> int:
    """The baseline: the same hand-off through a plain queue.Queue."""
    q: "queue.Queue" = queue.Queue(maxsize=32)
    received = {"n": 0}

    def reader():
        while True:
            data = q.get()
            if data is None:
                return
            received["n"] += len(data)

    thread = threading.Thread(target=reader)
    thread.start()
    for chunk in CHUNKS:
        q.put(chunk)
    q.put(None)
    thread.join(timeout=30.0)
    return received["n"]


def transfer_through_chain(filter_count: int, chunks=CHUNKS) -> int:
    """Move the payload through a proxy chain of pass-through filters."""
    source = IterableSource(list(chunks))
    sink = NullSink()
    control = ControlThread(source, sink, auto_start=False)
    for index in range(filter_count):
        control.add(PassthroughFilter(name=f"pt-{index}"))
    control.start()
    control.wait_for_completion(timeout=120.0)
    moved = sink.stats.snapshot()["bytes_in"]
    control.shutdown()
    return moved


def _median_rate(func, repeats: int) -> float:
    """Median MiB/s over ``repeats`` timed runs of ``func``."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        moved = func()
        elapsed = time.perf_counter() - start
        assert moved == TRANSFER_BYTES
        rates.append(moved / (1024 * 1024) / elapsed if elapsed else float("inf"))
    return statistics.median(rates)


def test_e6_pipe_vs_queue_throughput(benchmark):
    moved = benchmark(transfer_through_pipe)
    assert moved == TRANSFER_BYTES


def test_e6_queue_baseline_throughput(benchmark):
    moved = benchmark(transfer_through_queue)
    assert moved == TRANSFER_BYTES


@pytest.mark.parametrize("filter_count", [0, 1, 2, 4, 8])
def test_e6_chain_length_scaling(benchmark, filter_count):
    moved = benchmark.pedantic(lambda: transfer_through_chain(filter_count),
                               rounds=2, iterations=1)
    assert moved == TRANSFER_BYTES


def test_e6_summary_table(benchmark):
    """One-shot comparison table (fine-grained timings come from the rows above)."""
    repeats = _repeats()

    def collect():
        rows = []
        for label, func in [
            ("queue.Queue baseline", transfer_through_queue),
            ("detachable pipe", transfer_through_pipe),
            ("null proxy (0 filters)", lambda: transfer_through_chain(0)),
            ("chain of 4 filters", lambda: transfer_through_chain(4)),
        ]:
            rows.append((label, _median_rate(func, repeats)))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [
        f"E6: moving {TRANSFER_BYTES // (1024 * 1024)} MiB in {CHUNK_SIZE}-byte chunks"
        f" (median of {repeats})",
        "",
        format_row(["configuration", "MiB/s"], [24, 10]),
    ]
    for label, rate in rows:
        lines.append(format_row([label, f"{rate:.1f}"], [24, 10]))
    write_table("e6_stream_overhead", lines)


def test_e6_chunk_size_sweep(benchmark):
    """Aligned vs misaligned buffer reads, across chunk sizes.

    *aligned*: the reader asks for exactly one chunk's worth, so every
    read pops the head chunk out of the chunk deque as the writer's own
    object — the zero-copy path (a larger read budget over several queued
    smaller chunks would coalesce them instead).  *misaligned*: the reader
    asks for just over half a chunk, so every read splits the head chunk
    and pays the lazy slicing cost.  The chain row shows the end-to-end
    effect of chunk size on a composed data path.
    """
    repeats = _repeats()

    def collect():
        rows = []
        for chunk_size in SWEEP_CHUNK_SIZES:
            chunks = _make_chunks(chunk_size)
            misaligned_read = chunk_size // 2 + 1
            rows.append((
                chunk_size,
                _median_rate(lambda: transfer_through_pipe(chunks, chunk_size),
                             repeats),
                _median_rate(lambda: transfer_through_pipe(chunks, misaligned_read),
                             repeats),
                _median_rate(lambda: transfer_through_chain(4, chunks), repeats),
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [
        f"E6 chunk-size sweep: {TRANSFER_BYTES // (1024 * 1024)} MiB per run"
        f" (median of {repeats}; MiB/s)",
        "",
        format_row(["chunk size", "pipe aligned", "pipe misaligned",
                    "chain of 4"], [12, 14, 16, 12]),
    ]
    for chunk_size, aligned, misaligned, chain in rows:
        label = (f"{chunk_size // 1024} KiB" if chunk_size >= 1024
                 else f"{chunk_size} B")
        lines.append(format_row([label, f"{aligned:.1f}", f"{misaligned:.1f}",
                                 f"{chain:.1f}"], [12, 14, 16, 12]))
    write_table("e6_chunk_size_sweep", lines)
