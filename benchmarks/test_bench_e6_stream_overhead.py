"""E6 — the cost of the composition mechanism itself.

Detachable streams buy dynamic recomposition; this benchmark measures what
they cost relative to a plain ``queue.Queue`` hand-off, and how throughput
scales with the length of a pass-through filter chain (each extra filter
adds one thread and one buffered hop, exactly as in the paper's Java
implementation).
"""

from __future__ import annotations

import queue
import threading

import pytest

from repro.core import ControlThread, IterableSource, NullSink
from repro.filters import PassthroughFilter
from repro.streams import make_pipe

from benchutil import format_row, write_table

TRANSFER_BYTES = 4 * 1024 * 1024
CHUNK_SIZE = 8192
CHUNKS = [bytes(CHUNK_SIZE) for _ in range(TRANSFER_BYTES // CHUNK_SIZE)]


def transfer_through_pipe() -> int:
    """Move the payload through one detachable DOS/DIS pair."""
    dos, dis = make_pipe(capacity=256 * 1024)
    received = {"n": 0}

    def reader():
        while True:
            data = dis.read(65536, timeout=5.0)
            if not data:
                return
            received["n"] += len(data)

    thread = threading.Thread(target=reader)
    thread.start()
    for chunk in CHUNKS:
        dos.write(chunk)
    dos.close()
    thread.join(timeout=30.0)
    return received["n"]


def transfer_through_queue() -> int:
    """The baseline: the same hand-off through a plain queue.Queue."""
    q: "queue.Queue" = queue.Queue(maxsize=32)
    received = {"n": 0}

    def reader():
        while True:
            data = q.get()
            if data is None:
                return
            received["n"] += len(data)

    thread = threading.Thread(target=reader)
    thread.start()
    for chunk in CHUNKS:
        q.put(chunk)
    q.put(None)
    thread.join(timeout=30.0)
    return received["n"]


def transfer_through_chain(filter_count: int) -> int:
    """Move the payload through a proxy chain of pass-through filters."""
    source = IterableSource(list(CHUNKS))
    sink = NullSink()
    control = ControlThread(source, sink, auto_start=False)
    for index in range(filter_count):
        control.add(PassthroughFilter(name=f"pt-{index}"))
    control.start()
    control.wait_for_completion(timeout=120.0)
    moved = sink.stats.snapshot()["bytes_in"]
    control.shutdown()
    return moved


def test_e6_pipe_vs_queue_throughput(benchmark):
    moved = benchmark(transfer_through_pipe)
    assert moved == TRANSFER_BYTES


def test_e6_queue_baseline_throughput(benchmark):
    moved = benchmark(transfer_through_queue)
    assert moved == TRANSFER_BYTES


@pytest.mark.parametrize("filter_count", [0, 1, 2, 4, 8])
def test_e6_chain_length_scaling(benchmark, filter_count):
    moved = benchmark.pedantic(lambda: transfer_through_chain(filter_count),
                               rounds=2, iterations=1)
    assert moved == TRANSFER_BYTES


def test_e6_summary_table(benchmark):
    """One-shot comparison table (fine-grained timings come from the rows above)."""
    import time

    def timed(func):
        start = time.perf_counter()
        moved = func()
        elapsed = time.perf_counter() - start
        return moved, elapsed

    def collect():
        rows = []
        for label, func in [
            ("queue.Queue baseline", transfer_through_queue),
            ("detachable pipe", transfer_through_pipe),
            ("null proxy (0 filters)", lambda: transfer_through_chain(0)),
            ("chain of 4 filters", lambda: transfer_through_chain(4)),
        ]:
            moved, elapsed = timed(func)
            rows.append((label, moved, elapsed))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [
        f"E6: moving {TRANSFER_BYTES // (1024 * 1024)} MiB in {CHUNK_SIZE}-byte chunks",
        "",
        format_row(["configuration", "MiB/s"], [24, 10]),
    ]
    for label, moved, elapsed in rows:
        rate = moved / (1024 * 1024) / elapsed if elapsed else float("inf")
        lines.append(format_row([label, f"{rate:.1f}"], [24, 10]))
    write_table("e6_stream_overhead", lines)
    for _label, moved, _elapsed in rows:
        assert moved == TRANSFER_BYTES
