"""Shared helpers for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's evaluation artifacts (or one
of the quantitative claims made in the text), prints the resulting table to
stdout (visible with ``pytest -s``) and also writes it under
``benchmarks/results/`` so the numbers recorded in EXPERIMENTS.md can be
re-derived after a run.
"""

from __future__ import annotations

import os
from typing import Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Quick (smoke) runs write under ``results/quick/`` so they can never
#: clobber the committed full-mode tables in ``results/``.
QUICK_RESULTS_DIR = os.path.join(RESULTS_DIR, "quick")


def results_dir() -> str:
    """Where tables land for this run (checked per call, not at import)."""
    return QUICK_RESULTS_DIR if os.environ.get("REPRO_BENCH_QUICK") else RESULTS_DIR


def write_table(name: str, lines: Iterable[str]) -> str:
    """Print a result table and persist it under ``benchmarks/results/``.

    Full-mode runs write ``results/<name>.txt`` (the committed tables);
    quick-mode runs (``REPRO_BENCH_QUICK=1``, as exported by
    ``run_all.py --quick``) write ``results/quick/<name>.txt`` instead.
    """
    rows: List[str] = list(lines)
    text = "\n".join(rows) + "\n"
    print()
    print(text, end="")
    directory = results_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def format_row(values, widths) -> str:
    """Format one table row with fixed column widths."""
    cells = []
    for value, width in zip(values, widths):
        cells.append(f"{value:>{width}}" if not isinstance(value, str)
                     else f"{value:<{width}}")
    return "  ".join(str(cell) for cell in cells)
