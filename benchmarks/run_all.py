#!/usr/bin/env python3
"""Run every benchmark in this directory, optionally in quick smoke mode.

Each ``test_bench_*.py`` file is executed in its own pytest process so one
broken benchmark cannot take the rest down.  With ``--quick`` the benchmarks
run in smoke mode: pytest-benchmark timing rounds are disabled and
``REPRO_BENCH_QUICK=1`` is exported so sweeps that honour it (see
``test_bench_fec_backends.py``) trim their configuration grids, and result
tables land in ``benchmarks/results/quick/`` so the committed full-mode
tables in ``benchmarks/results/`` are never clobbered by a smoke run.  CI
runs the quick mode as a non-blocking job so the perf harness cannot
silently rot.

Usage::

    python benchmarks/run_all.py [--quick] [--pattern GLOB]
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)


def discover(pattern: str) -> "list[str]":
    return sorted(glob.glob(os.path.join(BENCH_DIR, pattern)))


def run_one(path: str, quick: bool) -> "tuple[bool, float]":
    command = [sys.executable, "-m", "pytest", path, "-q", "-p", "no:cacheprovider"]
    if quick:
        command.append("--benchmark-disable")
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    start = time.perf_counter()
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    return result.returncode == 0, time.perf_counter() - start


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: disable timing rounds and trim sweep grids",
    )
    parser.add_argument(
        "--pattern",
        default="test_bench_*.py",
        help="glob (relative to benchmarks/) selecting which benchmarks to run",
    )
    args = parser.parse_args(argv)

    paths = discover(args.pattern)
    if not paths:
        print(f"no benchmarks match {args.pattern!r}", file=sys.stderr)
        return 2

    failures = []
    for path in paths:
        name = os.path.basename(path)
        print(f"=== {name} ===", flush=True)
        ok, elapsed = run_one(path, quick=args.quick)
        status = "ok" if ok else "FAILED"
        print(f"=== {name}: {status} ({elapsed:.1f}s) ===\n", flush=True)
        if not ok:
            failures.append(name)

    mode = " (quick mode)" if args.quick else ""
    print(f"{len(paths) - len(failures)}/{len(paths)} benchmarks passed{mode}")
    results = os.path.join("benchmarks", "results", "quick" if args.quick else "")
    print(f"result tables: {os.path.normpath(results)}/")
    if failures:
        print("failed:", ", ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
