#!/usr/bin/env python
"""CI gate for the observability plane.

Boots a proxy in-process with ``REPRO_METRICS_ADDR`` set (ephemeral port),
runs an FEC-audio chain to quiescence under the engine named by
``REPRO_ENGINE`` (default: both engines in sequence), then asserts:

1. ``/healthz`` answers ``{"status": "ok"}``;
2. ``/metrics`` parses under a promtool-style line grammar (every HELP /
   TYPE / sample line matches exposition format 0.0.4);
3. the scrape's per-element byte and chunk totals equal the quiesced
   chain's own ``ChainSnapshot`` counters, exactly.

Fails (exit 1) on any violation.  Run as:
``PYTHONPATH=src python benchmarks/check_metrics_endpoint.py``
"""

from __future__ import annotations

import json
import os
import re
import sys
import urllib.request

os.environ.setdefault("REPRO_METRICS_ADDR", "127.0.0.1:0")

from repro.core import CollectorSink, IterableSource, Proxy  # noqa: E402
from repro.filters import FecDecoderFilter, FecEncoderFilter  # noqa: E402
from repro.media import AudioPacketizer, ToneSource  # noqa: E402
from repro.obs.exporter import default_server  # noqa: E402

_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[+-]?Inf|NaN|[+-]?[0-9.eE+-]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_STAT_METRICS = (
    ("repro_stream_chunks_total", "chunks_in", "chunks_out"),
    ("repro_stream_bytes_total", "bytes_in", "bytes_out"),
)


def fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            raise AssertionError(f"{url}: HTTP {response.status}")
        return response.read()


def validate_format(text: str) -> int:
    """Validate every line against the exposition grammar; returns samples."""
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), f"bad HELP line: {line!r}"
        elif line.startswith("# TYPE"):
            assert _TYPE_RE.match(line), f"bad TYPE line: {line!r}"
        elif line.startswith("#"):
            raise AssertionError(f"unknown comment line: {line!r}")
        else:
            assert _SAMPLE_RE.match(line), f"bad sample line: {line!r}"
            samples += 1
    assert samples > 0, "scrape contained no samples"
    return samples


def parse_samples(text: str) -> dict:
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        samples[(match.group("name"), frozenset(labels.items()))] = float(
            match.group("value")
        )
    return samples


def run_stream(engine_name: str, proxy_name: str):
    """One FEC-audio chain run to quiescence; returns (proxy, control)."""
    packets = AudioPacketizer(
        ToneSource(duration=0.4), packet_duration_ms=20
    ).packet_list()
    proxy = Proxy(proxy_name, engine=engine_name)
    control = proxy.add_stream(
        IterableSource(
            [p.pack() for p in packets], name="src", frame_output=True
        ),
        CollectorSink(name="sink"),
        name="audio",
        auto_start=False,
    )
    control.add(FecEncoderFilter(k=4, n=6, name="fec-enc"))
    control.add(FecDecoderFilter(name="fec-dec"), position=1)
    control.start()
    assert control.wait_for_completion(timeout=30.0), "stream did not quiesce"
    return proxy, control


def check_engine(engine_name: str, base_url: str) -> int:
    proxy_name = f"obs-check-{engine_name}"
    proxy, control = run_stream(engine_name, proxy_name)
    try:
        snap = control.snapshot()
        text = fetch(f"{base_url}/metrics").decode("utf-8")
        sample_count = validate_format(text)
        samples = parse_samples(text)

        elements = [("source", snap.source_stats)]
        elements += list(zip(snap.filter_names, snap.filter_stats))
        elements.append(("sink", snap.sink_stats))
        checked = 0
        for element_name, stats in elements:
            for metric, in_key, out_key in _STAT_METRICS:
                for direction, key in (("in", in_key), ("out", out_key)):
                    labels = frozenset(
                        {
                            "proxy": proxy_name,
                            "stream": "audio",
                            "element": element_name,
                            "direction": direction,
                        }.items()
                    )
                    scraped = samples.get((metric, labels))
                    expected = stats[key]
                    assert scraped == expected, (
                        f"{engine_name}: {metric} {element_name}/{direction} "
                        f"scraped {scraped} != snapshot {expected}"
                    )
                    checked += 1
        print(
            f"{engine_name:>8}: {sample_count} samples valid, "
            f"{checked} totals match the chain snapshot"
        )
        return checked
    finally:
        proxy.shutdown()


def main() -> int:
    engines = [os.environ["REPRO_ENGINE"]] if os.environ.get(
        "REPRO_ENGINE"
    ) else ["threaded", "event"]

    # Booting the first proxy starts the env-selected default server.
    bootstrap = Proxy("obs-check-bootstrap")
    server = default_server()
    assert server is not None, "REPRO_METRICS_ADDR did not start a server"
    base_url = server.url
    bootstrap.shutdown()

    health = json.loads(fetch(f"{base_url}/healthz"))
    assert health == {"status": "ok"}, f"unexpected /healthz body: {health}"
    print(f"/healthz ok at {base_url}")

    for engine_name in engines:
        check_engine(engine_name, base_url)
    print("OK: /metrics format valid and consistent with chain snapshots")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        sys.exit(1)
