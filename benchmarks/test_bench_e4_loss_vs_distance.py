"""E4 — packet loss versus distance from the access point.

Section 3 motivates adaptation with the observation (from the authors'
companion measurement study) that "packet loss rate can change dramatically
over a distance of several meters on wireless LANs".  This benchmark sweeps
the receiver's distance, measures the delivered fraction of a fixed packet
train at each position, and checks the calibration point used throughout
the reproduction (≈1.46% loss at 25 m, the operating point of Figure 7).
"""

from __future__ import annotations

import pytest

from repro.net import (
    AccessPoint,
    CALIBRATION_LOSS,
    DistanceLoss,
    loss_probability_at_distance,
)

from benchutil import format_row, write_table

DISTANCES_M = [5, 10, 15, 20, 25, 30, 35, 40, 45]
PACKETS_PER_POINT = 20000


def measure_loss_at(distance_m: float, packets: int = PACKETS_PER_POINT,
                    seed: int = 17) -> float:
    ap = AccessPoint()
    ap.add_receiver("probe", loss_model=DistanceLoss(distance_m, seed=seed))
    payload = b"\x00" * 500
    for _ in range(packets):
        ap.multicast(payload)
    return ap.receiver("probe").stats.loss_ratio


def test_e4_loss_vs_distance_sweep(benchmark):
    def sweep():
        return {d: measure_loss_at(d) for d in DISTANCES_M}

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "E4: packet loss vs distance from the access point "
        f"({PACKETS_PER_POINT} packets per point)",
        "",
        format_row(["distance (m)", "model loss %", "measured loss %"],
                   [13, 13, 16]),
    ]
    for distance in DISTANCES_M:
        lines.append(format_row(
            [distance, f"{100 * loss_probability_at_distance(distance):.3f}",
             f"{100 * measured[distance]:.3f}"], [13, 13, 16]))
    lines += [
        "",
        f"calibration: 25 m -> {100 * CALIBRATION_LOSS:.2f}% "
        "(paper's Figure 7 operating point: 100 - 98.54 = 1.46%)",
    ]
    write_table("e4_loss_vs_distance", lines)

    # Shape assertions: monotone increase, calibrated at 25 m, and a
    # dramatic (an order of magnitude) change across the last ten metres.
    rates = [measured[d] for d in DISTANCES_M]
    assert all(b >= a - 0.005 for a, b in zip(rates, rates[1:]))
    assert measured[25] == pytest.approx(CALIBRATION_LOSS, abs=0.005)
    assert measured[5] < 0.002
    assert measured[45] > 10 * max(measured[25], 1e-6)


def test_e4_loss_measurement_throughput(benchmark):
    """Time the loss measurement primitive itself (simulator throughput)."""
    rate = benchmark(lambda: measure_loss_at(30.0, packets=5000))
    assert 0.0 <= rate <= 1.0
