"""E8 — FEC versus retransmission (the baseline the paper's FEC replaces).

The paper chooses forward error correction for interactive multicast audio;
the implicit alternatives are retransmission schemes.  This benchmark puts
the three on the same per-receiver loss processes and measures

* transmission overhead (copies of each packet the sender must transmit) and
* delivery rounds (how many sender turns the slowest receiver waits —
  a proxy for latency, which interactive audio cannot afford),

as the number of wireless receivers grows.
"""

from __future__ import annotations

import pytest

from repro.net import BernoulliLoss
from repro.net.arq import (
    fec_transmission_overhead,
    simulate_multicast_arq,
    simulate_unicast_arq,
)

from benchutil import format_row, write_table

PACKETS = 3000
LOSS_RATE = 0.05
RECEIVER_COUNTS = [1, 2, 4, 8, 16]
FEC_K, FEC_N = 4, 6


def run_comparison():
    rows = []
    for receivers in RECEIVER_COUNTS:
        multicast = simulate_multicast_arq(
            PACKETS, [BernoulliLoss(LOSS_RATE, seed=i) for i in range(receivers)])
        unicast = simulate_unicast_arq(
            PACKETS, [BernoulliLoss(LOSS_RATE, seed=i) for i in range(receivers)])
        rows.append({
            "receivers": receivers,
            "fec_overhead": fec_transmission_overhead(FEC_K, FEC_N),
            "marq_overhead": multicast.transmission_overhead,
            "uarq_overhead": unicast.transmission_overhead,
            "marq_rounds": multicast.mean_rounds,
            "marq_max_rounds": multicast.max_rounds,
        })
    return rows


def test_e8_fec_vs_arq_scaling(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    widths = [10, 14, 17, 15, 12, 11]
    lines = [
        f"E8: FEC({FEC_N},{FEC_K}) vs ARQ, {PACKETS} packets, "
        f"{LOSS_RATE:.0%} independent loss per receiver",
        "(overhead = transmissions per source packet; rounds = sender turns "
        "until the slowest receiver has a packet)",
        "",
        format_row(["receivers", "FEC overhead", "mcast-ARQ overhd",
                    "ucast-ARQ overhd", "ARQ rounds", "ARQ worst"], widths),
    ]
    for row in rows:
        lines.append(format_row(
            [row["receivers"], f"{row['fec_overhead']:.2f}",
             f"{row['marq_overhead']:.3f}", f"{row['uarq_overhead']:.2f}",
             f"{row['marq_rounds']:.3f}", row["marq_max_rounds"]], widths))
    lines += [
        "",
        "FEC's cost is flat in the number of receivers and needs exactly one "
        "round; ARQ overhead/latency grow with the receiver population, and "
        "unicast repair grows linearly.",
    ]
    write_table("e8_fec_vs_arq", lines)

    # Shape assertions.
    assert all(row["fec_overhead"] == pytest.approx(1.5) for row in rows)
    marq_overheads = [row["marq_overhead"] for row in rows]
    assert marq_overheads == sorted(marq_overheads)          # grows with receivers
    assert rows[-1]["uarq_overhead"] > 10 * rows[-1]["fec_overhead"]
    assert all(row["marq_rounds"] > 1.0 for row in rows)
    # At 16 receivers, multicast ARQ already retransmits more than half the
    # FEC redundancy while still needing multiple rounds.
    assert rows[-1]["marq_overhead"] > 1.25
    assert rows[-1]["marq_max_rounds"] >= 2


def test_e8_arq_simulation_throughput(benchmark):
    """Throughput of the ARQ simulator itself (packets simulated per call)."""
    result = benchmark(lambda: simulate_multicast_arq(
        1000, [BernoulliLoss(LOSS_RATE, seed=i) for i in range(4)]))
    assert result.packet_count == 1000
