"""Engine scalability — aggregate throughput vs concurrent live streams.

One proxy hosts N concurrent *live* FEC-audio streams (wired receiver
pacing 20 ms audio packets in at a fixed interval -> FEC(6,4) encoder ->
wireless sender).  This is the paper's operating regime: packets trickle
into every stream, so per-packet dispatch cost — not bulk compute — decides
how many streams one proxy can carry.

Thread-per-filter pays two thread wakeups and context switches per packet
per hop across 2N filter threads, and its completion time balloons as N
grows; the event engine pumps every filter from one readiness-driven
scheduler thread and keeps delivering at close to the pacing rate.
Aggregate throughput = total payload delivered / wall-clock to complete all
N streams.  The table is written to ``benchmarks/results/engine_scale.txt``.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.core import IterableSource, NullSink, Proxy
from repro.filters import FecEncoderFilter
from repro.media import AudioPacketizer, ToneSource

from benchutil import format_row, write_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Concurrent stream counts swept per engine.
STREAM_COUNTS = [8, 32, 128] if QUICK else [8, 32, 128, 256]

#: Packets fed to each stream, and the per-packet pacing interval (a 2.5x
#: real-time feed of 20 ms audio packets — a loaded but live stream).
PACKETS_PER_STREAM = 30 if QUICK else 60
PACKET_INTERVAL_S = 0.008

ENGINES = ["threaded", "event", "asyncio"]
COMPLETION_TIMEOUT_S = 600.0

#: Repetitions per (engine, stream-count) cell; the *median* run is kept.
#: Thread-scheduling jitter is part of what thread-per-filter costs at high
#: stream counts, so the typical run — not the luckiest one — is the honest
#: number; the median is robust to interference outliers in both directions.
REPS = 1 if QUICK else 5


def _audio_packets() -> "list[bytes]":
    duration = PACKETS_PER_STREAM * 0.02
    packets = AudioPacketizer(ToneSource(duration=duration),
                              packet_duration_ms=20).packet_list()
    return [p.pack() for p in packets][:PACKETS_PER_STREAM]


def run_engine_at_scale(engine_name: str, n_streams: int,
                        packed: "list[bytes]") -> "tuple[float, float]":
    """Median of ``REPS`` runs of N concurrent live streams: (seconds, MB/s)."""
    elapsed = statistics.median(_run_once(engine_name, n_streams, packed)
                                for _ in range(REPS))
    payload_bytes = sum(len(p) for p in packed) * n_streams
    return elapsed, payload_bytes / (1024.0 * 1024.0) / elapsed


def _run_once(engine_name: str, n_streams: int,
              packed: "list[bytes]") -> float:
    # Pass the name so the proxy owns the engine and shuts it down on exit;
    # a leaked event scheduler would keep heartbeating through later cells.
    with Proxy(f"scale-{engine_name}-{n_streams}", engine=engine_name) as proxy:
        controls = []
        for i in range(n_streams):
            source = IterableSource(list(packed), frame_output=True,
                                    pacing_s=PACKET_INTERVAL_S,
                                    name=f"wired-{i}")
            sink = NullSink(name=f"wireless-{i}")
            control = proxy.add_stream(source, sink, name=f"audio-{i}",
                                       auto_start=False)
            control.add(FecEncoderFilter(k=4, n=6, name=f"fec-{i}"))
            controls.append(control)
        start = time.perf_counter()
        for control in controls:
            control.start()
        for control in controls:
            if not control.wait_for_completion(timeout=COMPLETION_TIMEOUT_S):
                raise RuntimeError(
                    f"{engine_name}/{n_streams}: stream did not complete")
        elapsed = time.perf_counter() - start
    return elapsed


def test_engine_scale_table():
    packed = _audio_packets()
    ideal_s = PACKETS_PER_STREAM * PACKET_INTERVAL_S
    widths = (10, 9, 11, 10, 12)
    lines = [
        "Execution-engine scalability: N concurrent live FEC(6,4) audio streams",
        f"({len(packed)} packets x {len(packed[0])} B per stream, paced at "
        f"{PACKET_INTERVAL_S * 1000:.0f} ms/packet -> ideal {ideal_s:.2f}s"
        f"{', quick mode' if QUICK else ''})",
        "",
        format_row(("engine", "streams", "seconds", "MB/s", "vs threaded"),
                   widths),
    ]
    speedups = {}
    for n_streams in STREAM_COUNTS:
        results = {}
        for engine_name in ENGINES:
            elapsed, mbps = run_engine_at_scale(engine_name, n_streams, packed)
            results[engine_name] = (elapsed, mbps)
        baseline_mbps = results["threaded"][1]
        ratios = {name: results[name][1] / baseline_mbps for name in ENGINES}
        speedups[n_streams] = ratios
        for engine_name in ENGINES:
            elapsed, mbps = results[engine_name]
            lines.append(format_row(
                (engine_name, n_streams, f"{elapsed:.2f}", f"{mbps:.1f}",
                 f"{ratios[engine_name]:.2f}x"),
                widths))
        lines.append("")
    for engine_name in ENGINES[1:]:
        lines.append(
            f"{engine_name}-engine speedup by stream count: "
            + ", ".join(f"{n}: {speedups[n][engine_name]:.2f}x"
                        for n in STREAM_COUNTS))
    write_table("engine_scale", lines)

    # Correctness, not performance, is the assertion: every stream completed
    # under every engine (checked in run_engine_at_scale).  The speedups are
    # recorded in the table; CI boxes are too noisy to gate on a ratio.
    assert all(ratio > 0
               for ratios in speedups.values() for ratio in ratios.values())
