"""FEC backend throughput: vectorised numpy vs the pure-Python oracle.

Measures raw (n, k) block encode/decode throughput in MB/s (megabytes of
*source* data per second) for every registered production backend across the
code configurations and block sizes the proxy pipeline actually sees.  The
decode measurement is the worst case for the code: all ``n - k`` erasures
land on data blocks, so every missing source row must be reconstructed from
parity.

Set ``REPRO_BENCH_QUICK=1`` (as ``benchmarks/run_all.py --quick`` does) to
trim the sweep to a smoke-sized subset; the (24,16)/1024-byte cell that the
speedup acceptance assertion checks is always included.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.fec import BlockErasureCode

from benchutil import format_row, write_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: (k, n) configurations, written FEC(n, k) in the paper's notation.
CODES = [(8, 12), (16, 24)] if QUICK else [(8, 12), (16, 24), (32, 48)]
BLOCK_SIZES = [256, 1024] if QUICK else [256, 1024, 4096]
BACKENDS = ["python", "numpy"]

#: The cell the acceptance criterion is measured on: FEC(24, 16) x 1024 B.
TARGET_CELL = (16, 24, 1024)
TARGET_SPEEDUP = 20.0

#: Minimum measured wall time per sample; fast backends repeat the operation
#: until the clock has something to chew on.
MIN_SAMPLE_S = 0.005 if QUICK else 0.05
MAX_ITERS = 8 if QUICK else 512


def _time_op(operation, max_iters: int) -> float:
    """Seconds per call, repeating until MIN_SAMPLE_S has elapsed."""
    operation()  # warm up (table caches, matrix caches)
    iters = 0
    start = time.perf_counter()
    while True:
        operation()
        iters += 1
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_SAMPLE_S or iters >= max_iters:
            return elapsed / iters


def measure_cell(k: int, n: int, block_size: int, backend: str) -> dict:
    """Encode/decode MB/s for one (code, block size, backend) cell."""
    code = BlockErasureCode(k, n, backend=backend)
    rng = np.random.default_rng(k * 1_000_003 + block_size)
    source = rng.integers(0, 256, size=(k, block_size), dtype=np.uint8)
    encoded = code.encode_batch(source)
    # Worst-case erasure pattern: every parity block is needed.
    survivors = list(range(n - k, n))
    received = np.ascontiguousarray(encoded[survivors])

    decoded = code.decode_batch(survivors, received)
    assert np.array_equal(decoded, source), "decode round trip failed"

    max_iters = 1 if backend == "python" else MAX_ITERS
    source_mb = k * block_size / 1e6
    encode_s = _time_op(lambda: code.encode_batch(source), max_iters)
    decode_s = _time_op(lambda: code.decode_batch(survivors, received), max_iters)
    return {
        "encode_mb_s": source_mb / encode_s,
        "decode_mb_s": source_mb / decode_s,
    }


def test_fec_backend_throughput(benchmark):
    def sweep():
        return {
            (k, n, size, backend): measure_cell(k, n, size, backend)
            for (k, n) in CODES
            for size in BLOCK_SIZES
            for backend in BACKENDS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    widths = [10, 8, 9, 14, 14, 14, 14, 9, 9]
    lines = [
        "FEC backend throughput (MB/s of source data; decode is the "
        "worst-case all-parity erasure pattern)",
        "",
        format_row(
            ["code", "block", "", "python enc", "python dec",
             "numpy enc", "numpy dec", "enc x", "dec x"],
            widths,
        ),
    ]
    for (k, n) in CODES:
        for size in BLOCK_SIZES:
            python = results[(k, n, size, "python")]
            fast = results[(k, n, size, "numpy")]
            enc_speedup = fast["encode_mb_s"] / python["encode_mb_s"]
            dec_speedup = fast["decode_mb_s"] / python["decode_mb_s"]
            lines.append(format_row(
                [f"({n},{k})", size, "",
                 f"{python['encode_mb_s']:.2f}", f"{python['decode_mb_s']:.2f}",
                 f"{fast['encode_mb_s']:.1f}", f"{fast['decode_mb_s']:.1f}",
                 f"{enc_speedup:.0f}x", f"{dec_speedup:.0f}x"],
                widths,
            ))
    if QUICK:
        lines += ["", "(REPRO_BENCH_QUICK=1: reduced sweep and sample times)"]
    write_table("fec_backends", lines)

    # Acceptance criterion: >= 20x encode speedup on FEC(24,16) x 1024 B.
    k, n, size = TARGET_CELL
    speedup = (results[(k, n, size, "numpy")]["encode_mb_s"]
               / results[(k, n, size, "python")]["encode_mb_s"])
    assert speedup >= TARGET_SPEEDUP, (
        f"numpy encode speedup on FEC({n},{k}) x {size} B was only "
        f"{speedup:.1f}x (target {TARGET_SPEEDUP}x)"
    )
