#!/usr/bin/env python
"""CI perf-floor gate for the stream data path.

Fails (exit 1) when the E6 "chain of 4 filters" configuration moves data at
less than ``FLOOR_RATIO`` of the plain ``queue.Queue`` baseline measured in
the same process.  The committed full-mode table shows the chain at ~20% of
the baseline; the 10% floor is deliberately generous so shared-runner noise
cannot flake the build, while a gross data-path regression (per-chunk
copies, per-chunk locking, unconditional wakeups creeping back in) still
trips it.  Using the in-process baseline as the denominator normalises away
the runner's absolute speed.

Run as: ``PYTHONPATH=src python benchmarks/check_perf_floor.py``
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
os.environ.setdefault("REPRO_BENCH_QUICK", "1")  # never touch committed tables

from test_bench_e6_stream_overhead import (  # noqa: E402
    TRANSFER_BYTES,
    transfer_through_chain,
    transfer_through_queue,
)

FLOOR_RATIO = 0.10
ATTEMPTS = 3


def best_rate(func) -> float:
    """Best MiB/s over a few runs — the floor gates regressions, not noise."""
    best = 0.0
    for _ in range(ATTEMPTS):
        start = time.perf_counter()
        moved = func()
        elapsed = time.perf_counter() - start
        assert moved == TRANSFER_BYTES, f"moved {moved} of {TRANSFER_BYTES} bytes"
        best = max(best, moved / (1024 * 1024) / elapsed)
    return best


def main() -> int:
    queue_rate = best_rate(transfer_through_queue)
    chain_rate = best_rate(lambda: transfer_through_chain(4))
    ratio = chain_rate / queue_rate if queue_rate else 0.0
    print(f"queue.Queue baseline : {queue_rate:8.1f} MiB/s")
    print(f"chain of 4 filters   : {chain_rate:8.1f} MiB/s")
    print(f"chain/queue ratio    : {ratio:8.3f}  (floor {FLOOR_RATIO:.2f})")
    if ratio < FLOOR_RATIO:
        print("FAIL: composed data path fell below the perf floor")
        return 1
    print("OK: data path above the perf floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
