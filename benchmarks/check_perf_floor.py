#!/usr/bin/env python
"""CI perf-floor gate for the stream data path.

Fails (exit 1) when the E6 "chain of 4 filters" configuration moves data at
less than the floor ratio of the plain ``queue.Queue`` baseline measured in
the same process.  The committed full-mode table shows the chain at ~60% of
the baseline (post zero-copy batch pump); the 25% floor leaves room for
shared-runner noise while a gross data-path regression (per-chunk copies,
per-chunk locking, re-fragmentation, unconditional wakeups creeping back
in) still trips it.  Using the in-process baseline as the denominator
normalises away the runner's absolute speed.

``REPRO_PERF_FLOOR_PCT`` overrides the floor (as a percentage, e.g. ``10``
for a noisy runner, ``40`` for a quiet one) without editing this file.

Alongside the pass/fail verdict the gate writes ``BENCH_datapath.json``
(override the path with ``REPRO_PERF_JSON``) with the measured rates, so CI
can archive the data-path numbers per commit as a machine-readable artifact.

Run as: ``PYTHONPATH=src python benchmarks/check_perf_floor.py``
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
os.environ.setdefault("REPRO_BENCH_QUICK", "1")  # never touch committed tables

from test_bench_e6_stream_overhead import (  # noqa: E402
    TRANSFER_BYTES,
    transfer_through_chain,
    transfer_through_queue,
)

DEFAULT_FLOOR_PCT = 25.0
ATTEMPTS = 3


def floor_ratio() -> float:
    """The gating ratio: ``REPRO_PERF_FLOOR_PCT`` (percent) or the default."""
    raw = os.environ.get("REPRO_PERF_FLOOR_PCT", "")
    if raw:
        try:
            pct = float(raw)
        except ValueError:
            raise SystemExit(
                f"REPRO_PERF_FLOOR_PCT={raw!r} is not a number")
        if not 0 <= pct <= 100:
            raise SystemExit(
                f"REPRO_PERF_FLOOR_PCT={raw!r} must be between 0 and 100")
        return pct / 100.0
    return DEFAULT_FLOOR_PCT / 100.0


def best_rate(func) -> float:
    """Best MiB/s over a few runs — the floor gates regressions, not noise."""
    best = 0.0
    for _ in range(ATTEMPTS):
        start = time.perf_counter()
        moved = func()
        elapsed = time.perf_counter() - start
        assert moved == TRANSFER_BYTES, f"moved {moved} of {TRANSFER_BYTES} bytes"
        best = max(best, moved / (1024 * 1024) / elapsed)
    return best


def write_report(path: str, payload: dict) -> None:
    """Persist the measured rates for CI artifact upload."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> int:
    floor = floor_ratio()
    queue_rate = best_rate(transfer_through_queue)
    null_proxy_rate = best_rate(lambda: transfer_through_chain(0))
    chain_rate = best_rate(lambda: transfer_through_chain(4))
    ratio = chain_rate / queue_rate if queue_rate else 0.0
    report = {
        "transfer_bytes": TRANSFER_BYTES,
        "attempts": ATTEMPTS,
        "queue_baseline_mib_s": round(queue_rate, 1),
        "null_proxy_mib_s": round(null_proxy_rate, 1),
        "chain_of_4_mib_s": round(chain_rate, 1),
        "chain_queue_ratio": round(ratio, 4),
        "floor_ratio": floor,
        "passed": ratio >= floor,
    }
    write_report(os.environ.get("REPRO_PERF_JSON", "BENCH_datapath.json"),
                 report)
    print(f"queue.Queue baseline : {queue_rate:8.1f} MiB/s")
    print(f"null proxy (0 filt.) : {null_proxy_rate:8.1f} MiB/s")
    print(f"chain of 4 filters   : {chain_rate:8.1f} MiB/s")
    print(f"chain/queue ratio    : {ratio:8.3f}  (floor {floor:.2f})")
    if ratio < floor:
        print("FAIL: composed data path fell below the perf floor")
        return 1
    print("OK: data path above the perf floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
