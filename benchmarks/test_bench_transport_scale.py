"""Transport scalability — concurrent UDP streams per scheduler thread.

One proxy hosts N concurrent UDP-transport streams (a bound UDP socket ->
``TransportSource`` -> ``NullSink``); the feeder blasts M framed datagrams
into every socket and the clock runs until all N streams observe
end-of-stream.  This is the multi-process deployment regime the transport
layer exists for: the proxy's ingest cost per datagram — not bulk compute —
decides how many remote senders one proxy can terminate.

Under the threaded engine every stream's source burns a dedicated reader
thread.  Under the event engine the sockets are parked on the scheduler's
selector and join the dirty-set scheduling loop: N streams cost N file
descriptors and **one** scheduler thread — the benchmark asserts the thread
census (that is the acceptance bar; CI boxes are too noisy to gate on a
throughput ratio).  The table is written to
``benchmarks/results/transport_scale.txt``.
"""

from __future__ import annotations

import os
import statistics
import threading
import time

from repro.core import NullSink, Proxy
from repro.transport import TransportSource, UdpTransport

from benchutil import format_row, write_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Concurrent UDP stream counts swept per engine.  64 is the acceptance
#: floor for single-scheduler-thread multiplexing.
STREAM_COUNTS = [16, 64] if QUICK else [16, 64, 128]

PACKETS_PER_STREAM = 30 if QUICK else 50
PAYLOAD = bytes(range(256)) * 2  # 512 B per datagram

ENGINES = ["threaded", "event"]
COMPLETION_TIMEOUT_S = 120.0

#: Repetitions per (engine, stream-count) cell; the median run is kept.
REPS = 1 if QUICK else 3


def _run_once(engine_name: str, n_streams: int) -> "tuple[float, int]":
    """(seconds to drain all streams, extra threads observed mid-run)."""
    baseline_threads = threading.active_count()
    transport = UdpTransport()
    try:
        with Proxy(f"udp-scale-{engine_name}-{n_streams}",
                   engine=engine_name, transport=transport) as proxy:
            channels = []
            controls = []
            for i in range(n_streams):
                channel = transport.open_channel(f"stream-{i}")
                receiver = channel.join("proxy-ingest")
                control = proxy.add_stream(TransportSource(receiver),
                                           NullSink(expect_frames=True),
                                           name=f"udp-{i}")
                channels.append(channel)
                controls.append(control)
            extra_threads = threading.active_count() - baseline_threads
            start = time.perf_counter()
            for _ in range(PACKETS_PER_STREAM):
                for channel in channels:
                    channel.send(PAYLOAD)
            for channel in channels:
                channel.close()
            for control in controls:
                if not control.wait_for_completion(
                        timeout=COMPLETION_TIMEOUT_S):
                    raise RuntimeError(
                        f"{engine_name}/{n_streams}: stream did not complete")
            elapsed = time.perf_counter() - start
    finally:
        transport.close()
    return elapsed, extra_threads


def run_engine_at_scale(engine_name: str,
                        n_streams: int) -> "tuple[float, float, int]":
    """Median of REPS runs: (seconds, MB/s aggregate, extra threads)."""
    runs = [_run_once(engine_name, n_streams) for _ in range(REPS)]
    elapsed = statistics.median(run[0] for run in runs)
    threads = max(run[1] for run in runs)
    payload_bytes = len(PAYLOAD) * PACKETS_PER_STREAM * n_streams
    return elapsed, payload_bytes / (1024.0 * 1024.0) / elapsed, threads


def test_transport_scale_table():
    widths = (10, 9, 9, 11, 10, 12)
    lines = [
        "Transport scalability: N concurrent UDP streams into one proxy",
        f"({PACKETS_PER_STREAM} datagrams x {len(PAYLOAD)} B per stream"
        f"{', quick mode' if QUICK else ''})",
        "",
        format_row(("engine", "streams", "threads", "seconds", "MB/s",
                    "vs threaded"), widths),
    ]
    event_threads = {}
    for n_streams in STREAM_COUNTS:
        results = {}
        for engine_name in ENGINES:
            results[engine_name] = run_engine_at_scale(engine_name, n_streams)
        ratio = results["event"][1] / results["threaded"][1]
        event_threads[n_streams] = results["event"][2]
        for engine_name in ENGINES:
            elapsed, mbps, threads = results[engine_name]
            vs = f"{ratio:.2f}x" if engine_name == "event" else "1.00x"
            lines.append(format_row(
                (engine_name, n_streams, threads, f"{elapsed:.2f}",
                 f"{mbps:.1f}", vs), widths))
        lines.append("")
    lines.append("event-engine extra threads by stream count: "
                 + ", ".join(f"{n}: {event_threads[n]}"
                             for n in STREAM_COUNTS))
    write_table("transport_scale", lines)

    # The acceptance assertion: at >= 64 concurrent UDP streams the event
    # engine added exactly ONE thread (its scheduler) — the sockets are
    # multiplexed on the selector, with no per-socket reader threads.
    for n_streams, threads in event_threads.items():
        if n_streams >= 64:
            assert threads == 1, (
                f"event engine used {threads} extra threads "
                f"for {n_streams} UDP streams")
