#!/usr/bin/env python3
"""A 4-worker FEC-audio fleet: the proxy sharded across OS processes.

One Python process tops out at one core no matter which execution engine
it runs; :class:`~repro.cluster.ProxyCluster` breaks that ceiling by
spawning N worker processes — each a full proxy — and sharding streams
across them by consistent hash on the stream name.  The parent stays a
pure control plane: it describes each stream as a JSON-safe
:class:`~repro.cluster.StreamSpec`, fans control operations out over
length-prefixed RPC, and aggregates observability (fleet ``/metrics``
with a ``worker`` label, summed ``ChainSnapshot`` totals).

This example runs the paper's audio regime on a fleet:

1. spawn 4 workers, each hosting live paced FEC(6,4) audio streams;
2. splice a zlib compressor into *every* stream fleet-wide while the
   packets are flowing (each worker runs the paper's pause → insert →
   resume protocol on its own chains);
3. drain gracefully and print the per-worker census, per-stream
   results, and the fleet-wide snapshot totals.

Run it::

    PYTHONPATH=src python examples/cluster_fec_audio.py [workers]
"""

import _path  # noqa: F401  (sys.path shim for source checkouts)

import sys

STREAMS_PER_WORKER = 2
PACKET_DURATION_MS = 20
PACKETS_PER_STREAM = 40


def main() -> None:
    from repro.cluster import ProxyCluster, ShardRing, StreamSpec
    from repro.core.registry import FilterSpec
    from repro.media import AudioPacketizer, ToneSource

    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    # The paper's 20 ms audio packets, packed to bytes once and shipped
    # to the workers inside each stream spec.
    duration = PACKETS_PER_STREAM * PACKET_DURATION_MS / 1000.0
    packets = [p.pack() for p in
               AudioPacketizer(ToneSource(duration=duration),
                               packet_duration_ms=PACKET_DURATION_MS)
               .packet_list()][:PACKETS_PER_STREAM]

    # Probe candidate names against the shard ring so every worker hosts
    # the same number of streams (the cluster places with this same ring).
    ring = ShardRing(range(workers))
    quota = {worker_id: STREAMS_PER_WORKER for worker_id in range(workers)}
    names = []
    candidate = 0
    while any(quota.values()):
        name = f"audio-{candidate}"
        candidate += 1
        owner = ring.worker_for(name)
        if quota[owner]:
            quota[owner] -= 1
            names.append(name)

    specs = [
        StreamSpec.from_bytes(name, packets, pacing_s=PACKET_DURATION_MS / 1000.0)
        .with_filter(FilterSpec("fec-encoder", {"k": 4, "n": 6},
                                name=f"fec-{name}"))
        for name in names
    ]

    with ProxyCluster(workers=workers, name="audio-fleet") as cluster:
        placement = cluster.open_streams(specs)
        print(f"fleet of {workers} workers, {len(specs)} live audio streams:")
        for name in names:
            print(f"  {name:>10} -> worker {placement[name]}")

        # Fleet-wide runtime adaptation, the paper's composition protocol
        # on every chain at once: each worker pauses, splices, resumes.
        positions = cluster.splice_insert(
            FilterSpec("zlib-compress", {"level": 6}, name="fleet-zlib"))
        spliced = sum(len(streams) for streams in positions.values())
        print(f"\nspliced 'fleet-zlib' into {spliced} running chains "
              f"across {len(positions)} workers")

        cluster.drain(timeout=60.0)
        print("\nper-stream results (FEC-encoded, zlib-compressed):")
        for name in names:
            result = cluster.stream_result(name)
            print(f"  {name:>10}: {result['items']:3d} packets out, "
                  f"{result['bytes']:6d} B, digest {result['digest'][:12]}…")

        fleet = cluster.snapshot_sum()
        print(f"\nfleet totals ({fleet.stream_name}):")
        print(f"  sources emitted : {fleet.source_stats.get('packets_out', 0)} "
              f"packets, {fleet.source_stats.get('bytes_out', 0)} B")
        print(f"  sinks received  : {fleet.sink_stats.get('packets_in', 0)} "
              f"packets, {fleet.sink_stats.get('bytes_in', 0)} B")
        families = {family.name for family in cluster.collect_metric_families()}
        print(f"  metric families : {len(families)} "
              f"(per-worker samples labelled worker=\"<id>\")")


if __name__ == "__main__":
    main()
