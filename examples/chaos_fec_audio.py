#!/usr/bin/env python3
"""FEC audio over a lossy link, surviving a mid-stream filter crash.

Two faults are injected into one live audio stream, both from the new
fault-injection plane:

* the **link** drops datagrams — a seeded :class:`~repro.chaos.FaultPlan`
  decorates the wireless channel through a ``chaos:`` transport wrapper,
  and the proxy's FEC(6, 4) encoder covers the losses at the receiver;
* a **filter crashes** — a ``fault-injection`` filter riding the chain
  blows up mid-stream, and the stream's ``bypass`` error policy splices
  it out live: the chunks buffered inside the dead filter are lost (the
  paper's dead-element splice loses exactly the same), but playback
  continues degraded instead of the whole stream dying.

Every fault and every recovery lands in the in-process event log with the
stream's correlation id, so afterwards the incident reads as a timeline.

Run it with ``python examples/chaos_fec_audio.py``.
"""

import _path  # noqa: F401

from repro.chaos import ChaosTransport, FaultPlan
from repro.core import ErrorPolicy
from repro.filters import FaultInjectionFilter
from repro.media import AudioPacketizer, ToneSource
from repro.obs.events import get_event_log
from repro.proxies import FecAudioProxy, FecAudioProxyConfig, WirelessAudioReceiver
from repro.transport import get_transport

#: Deterministic link faults: one dropped datagram in FEC group 0
#: (offsets 0-5) and one in group 1 (offsets 6-11) — both inside the
#: (6, 4) code's two-erasure budget — plus a duplicate and an adjacent
#: reorder, which never cost data at all.
PLAN = FaultPlan(seed=42, drop_offsets=(2, 9), duplicate_offsets=(13,),
                 reorder_offsets=(16,))

#: The saboteur in the chain: passes audio through untouched until its
#: 12th chunk, then raises.  Under the stream's bypass policy the
#: supervisor splices it out and the stream keeps flowing.
CRASH_AT_CHUNK = 12


def main() -> None:
    packets = AudioPacketizer(ToneSource(duration=0.5),
                              packet_duration_ms=20).packet_list()
    print(f"streaming {len(packets)} audio packets over a chaos-wrapped "
          f"link: {PLAN.describe()}")
    print(f"a fault-injection filter will crash at chunk {CRASH_AT_CHUNK}; "
          f"the stream's policy is 'bypass'")
    print()

    events = get_event_log()
    events.clear()

    transport = ChaosTransport(get_transport("loopback"), PLAN)
    try:
        channel = transport.open_channel("wlan")
        receiver = channel.join("mobile-host")

        config = FecAudioProxyConfig(
            engine="threaded", fec_enabled=True, fec_start_group_id=0,
            source_pacing_s=0.01,  # pace the stream so the crash is mid-flight
            error_policy=ErrorPolicy(mode="bypass", poll_interval_s=0.02))
        proxy = FecAudioProxy(packets, channel=channel, config=config)
        # The saboteur sits downstream of the FEC encoder (start() inserts
        # the encoder at position 0), so its crash threatens the whole
        # protected stream.
        proxy.control.add(FaultInjectionFilter(name="gremlin",
                                               crash_at_chunk=CRASH_AT_CHUNK))
        proxy.start()
        if not proxy.wait_for_completion(timeout=60.0):
            raise RuntimeError("the stream did not finish")
        proxy.shutdown()
        channel.close()  # flush any datagram the reorder fault still holds

        captured = []
        while True:
            payload = receiver.recv(timeout=10.0)
            if payload is None:
                break
            captured.append(bytes(payload))
    finally:
        transport.close()

    audio = WirelessAudioReceiver("mobile-host")
    audio.process(captured)
    audio.finish()
    report = audio.delivery_report(len(packets))

    print("incident timeline (from the event log):")
    for record in events.records():
        if record["event"] not in ("chaos-fault", "filter-bypass",
                                   "stream-error"):
            continue
        fields = {k: v for k, v in record.items()
                  if k not in ("event", "ts", "cid", "proxy", "stream")}
        print(f"  {record['event']:14} {fields}")
    print()

    bypasses = events.records(event="filter-bypass")
    print(f"filters bypassed live     : {len(bypasses)} "
          f"({', '.join(r['filter'] for r in bypasses) or '-'})")
    print(f"datagrams on the wire     : {len(captured)}")
    print(f"% received raw            : {report.received_percent:.2f}")
    print(f"% delivered to application: {report.reconstructed_percent:.2f}")
    print()
    if not bypasses:
        raise RuntimeError("the crashed filter was never bypassed")
    print("the link's dropped datagrams were paid back by FEC, and the "
          "filter crash cost only the chunks buffered inside the dead "
          "filter — the supervisor spliced it out live and playback "
          "continued degraded instead of dying")


if __name__ == "__main__":
    main()
