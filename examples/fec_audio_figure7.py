#!/usr/bin/env python3
"""Reproduce the paper's Figure 7 experiment from the command line.

Streams ~104 seconds of PCM audio (the paper's format: 8000 samples/s, two
8-bit channels, 20 ms packets) through the FEC(6,4) audio proxy to three
wireless laptops 25 m from the access point, then prints the per-window
received/reconstructed percentages and the run averages next to the values
the paper reports (98.54% / 99.98%).

Run it with ``python examples/fec_audio_figure7.py``.
"""

import _path  # noqa: F401

from repro.media import ToneSource
from repro.net import FIG7_WINDOW_SIZE
from repro.proxies import run_fec_audio_experiment

PAPER_PACKETS = 5184
PAPER_RECEIVED = 98.54
PAPER_RECONSTRUCTED = 99.98


def main() -> None:
    duration_s = PAPER_PACKETS * 0.020
    print(f"transmitting {duration_s:.0f} s of audio "
          f"({PAPER_PACKETS} packets) through an FEC(6,4) proxy, "
          "3 receivers at 25 m ...")
    result = run_fec_audio_experiment(
        audio_source=ToneSource(duration=duration_s),
        duration_s=duration_s, distance_m=25.0, receiver_count=3, seed=2001)

    report = next(iter(result.reports.values()))
    print()
    print(f"{'sequence #':>10}  {'% received':>10}  {'% reconstructed':>15}")
    for point in report.windowed(FIG7_WINDOW_SIZE):
        print(f"{point.window_start:>10}  {point.received_percent:>10.2f}  "
              f"{point.reconstructed_percent:>15.2f}")
    print()
    print(f"{'':24}{'measured':>10}{'paper':>10}")
    print(f"{'average % received':24}"
          f"{result.average_received_percent():>10.2f}{PAPER_RECEIVED:>10.2f}")
    print(f"{'average % reconstructed':24}"
          f"{result.average_reconstructed_percent():>10.2f}{PAPER_RECONSTRUCTED:>10.2f}")
    print()
    print(f"packets on air: {result.packets_on_air} "
          f"(= {result.total_packets} data packets x n/k, plus any uncoded tail)")
    print(f"channel airtime: {result.airtime_s:.1f} s of the "
          f"{duration_s:.0f} s stream (2 Mbps WaveLAN)")


if __name__ == "__main__":
    main()
