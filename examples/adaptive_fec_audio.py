#!/usr/bin/env python3
"""Demand-driven FEC for a live audio stream (the paper's Section 3 scenario).

A user joins a collaborative session on a wireless laptop near the access
point and then walks to a conference room down the hall.  A loss-rate
observer raplet watches her link; when losses rise, an FEC responder inserts
an (n, k) erasure-code encoder into the proxy's running stream — without
disturbing the connection to the audio source — and upgrades the code as the
link keeps degrading.

Run it with ``python examples/adaptive_fec_audio.py``.
"""

import _path  # noqa: F401

from repro.net import LinearWalk
from repro.rapidware import FecPolicy, run_adaptive_walk_experiment


def main() -> None:
    walk = LinearWalk(start_distance_m=5.0, end_distance_m=42.0, duration_s=16.0)
    print(f"user walks {walk.start_distance_m:.0f} m -> {walk.end_distance_m:.0f} m "
          f"from the access point while listening to {walk.duration_s:.0f} s of audio")
    print()

    adaptive = run_adaptive_walk_experiment(walk=walk, policy=FecPolicy(),
                                            wlan_seed=41)
    baseline = run_adaptive_walk_experiment(walk=walk, adaptive=False,
                                            wlan_seed=41)

    print(f"{'t (s)':>6}  {'dist (m)':>8}  {'observed loss':>13}  {'FEC':>4}  code")
    for step in adaptive.steps:
        code = f"({step.fec_code[1]},{step.fec_code[0]})" if step.fec_code else "-"
        print(f"{step.time_s:6.1f}  {step.distance_m:8.1f}  "
              f"{step.observed_loss_rate:13.3f}  {'on' if step.fec_active else 'off':>4}  {code}")

    print()
    activation = adaptive.fec_activation_time()
    print(f"FEC first inserted at t = {activation:.1f} s "
          f"({adaptive.insertions} insertion(s), {adaptive.upgrades} code upgrade(s))")
    print()
    print(f"{'':28}{'adaptive':>10}{'no FEC':>10}")
    print(f"{'% of packets received raw':28}"
          f"{adaptive.report.received_percent:10.2f}"
          f"{baseline.report.received_percent:10.2f}")
    print(f"{'% delivered to application':28}"
          f"{adaptive.report.reconstructed_percent:10.2f}"
          f"{baseline.report.reconstructed_percent:10.2f}")
    print()
    print("the adaptive proxy pays FEC overhead only once the link actually "
          "degrades, and the application-level delivery stays high for the "
          "whole walk")


if __name__ == "__main__":
    main()
