#!/usr/bin/env python3
"""An HTTP/WebSocket front door onto a composable proxy.

This starts one :class:`~repro.ingress.IngressServer` whose clients each
get a fresh FEC encode→decode filter chain — the paper's proxy, but with
ordinary network clients instead of framework endpoints:

* ``POST /stream`` — pipe bytes in, read the proxied bytes back as a
  chunked response (works with plain ``curl``);
* ``GET /stream`` with ``Upgrade: websocket`` — full-duplex binary
  messages through the same chain;
* ``GET /healthz`` — liveness probe; ``GET /`` — a usage page.

Each connection is one real stream in the proxy: the FEC pair runs per
client, so one client's loss repair never touches another's stream, and
a disconnect tears down exactly one chain.

Run it with::

    REPRO_ENGINE=asyncio python examples/http_ingress.py [port]

then, from another shell::

    curl -s http://127.0.0.1:PORT/healthz
    printf 'hello proxy' | curl -s -N --data-binary @- http://127.0.0.1:PORT/stream

Pass ``--oneshot`` to run a built-in client round trip and exit (used by
CI to smoke-test the ingress path headlessly).
"""

import asyncio
import sys

import _path  # noqa: F401

from repro.core.proxy import Proxy
from repro.filters.fec_filters import FecDecoderFilter, FecEncoderFilter
from repro.ingress import IngressServer
from repro.ingress.http import CHUNKED_EOF, encode_chunk


def fec_chain():
    """A fresh per-client chain: (8, 4) FEC encode, then decode."""
    return [FecEncoderFilter(k=4, n=8, name="fec-enc"),
            FecDecoderFilter(name="fec-dec")]


async def oneshot_roundtrip(port: int) -> int:
    """POST a few chunks through the chain and check they come back."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payloads = [b"alpha ", b"bravo ", b"charlie"]
    writer.write(b"POST /stream HTTP/1.1\r\nHost: ingress\r\n"
                 b"Transfer-Encoding: chunked\r\n\r\n")
    for payload in payloads:
        writer.write(encode_chunk(payload))
    writer.write(CHUNKED_EOF)
    await writer.drain()
    response = await reader.read()
    writer.close()
    body = b"".join(payloads)
    if all(p in response for p in payloads):
        print(f"oneshot: {len(body)} bytes made the round trip through "
              f"the FEC chain")
        return 0
    print(f"oneshot FAILED; response was {response!r}")
    return 1


async def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--oneshot"]
    oneshot = "--oneshot" in sys.argv[1:]
    port = int(args[0]) if args else 8787

    proxy = Proxy("ingress-demo")
    server = IngressServer(proxy, host="127.0.0.1", port=port,
                           filter_factory=fec_chain, frame_stream=True)
    await server.start()
    print(f"ingress proxy listening on http://127.0.0.1:{server.port}/")
    print("routes: GET /  GET /healthz  POST /stream  "
          "GET /stream (websocket)")
    try:
        if oneshot:
            return await oneshot_roundtrip(server.port)
        await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
        proxy.shutdown()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(asyncio.run(main()))
    except KeyboardInterrupt:
        sys.exit(0)
