"""Make the examples runnable from a source checkout without installation."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
_SRC = os.path.abspath(_SRC)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
