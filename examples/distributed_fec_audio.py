#!/usr/bin/env python3
"""The FEC audio proxy as a *distributed* system: two OS processes over UDP.

The paper's testbed (Figure 3) is multi-host — a wired sender, a proxy, and
mobile receivers on the wireless segment.  With the ``udp`` transport the
reproduction can finally be deployed the same way.  This example runs

* a **receiver process** (the mobile host): binds a UDP socket, reports its
  port, FEC-decodes everything that arrives, and prints delivery stats;
* a **sender process** (this one, the proxy host): packetises a tone,
  pushes it through the FEC(6,4) audio proxy chain, and multicasts the
  encoded packets to the receiver's address over real UDP datagrams.

End-of-stream crosses the process boundary too: when the proxy chain
finishes, the transport sink closes the channel, which sends the UDP
end-of-stream datagram the receiver's transport turns into EOF.

Run it::

    PYTHONPATH=src python examples/distributed_fec_audio.py
"""

import _path  # noqa: F401  (sys.path shim for source checkouts)

import multiprocessing


def receiver_process(port_queue, report_queue) -> None:
    """The mobile host: a separate OS process with its own UDP socket."""
    import _path  # noqa: F401  (re-imported under spawn)
    from repro.proxies import WirelessAudioReceiver
    from repro.transport import UdpTransport

    transport = UdpTransport()
    try:
        channel = transport.open_channel("wlan")
        receiver = channel.join("mobile-host")
        port_queue.put(receiver.address)

        captured = []
        while True:
            payload = receiver.recv(timeout=30.0)
            if payload is None:
                break  # the sender's EOS datagram arrived
            captured.append(payload)

        audio = WirelessAudioReceiver("mobile-host")
        audio.process(captured)
        audio.finish()
        report_queue.put({
            "datagrams": len(captured),
            "bytes": sum(len(p) for p in captured),
            "sequences": len(audio.delivery_report(0).reconstructed),
        })
    finally:
        transport.close()


def main() -> None:
    from repro.media import AudioPacketizer, ToneSource
    from repro.proxies import FecAudioProxy, FecAudioProxyConfig

    # Start the receiver first: it binds its socket and tells us where.
    context = multiprocessing.get_context("spawn")
    port_queue = context.Queue()
    report_queue = context.Queue()
    receiver = context.Process(target=receiver_process,
                               args=(port_queue, report_queue), daemon=True)
    receiver.start()
    address = port_queue.get(timeout=30.0)
    print(f"receiver process bound to udp://{address[0]}:{address[1]}")

    # The proxy host: a 2-second tone, packetised exactly as the wired LAN
    # would deliver it, FEC(6,4)-protected, multicast over real UDP.
    packets = AudioPacketizer(ToneSource(duration=2.0),
                              packet_duration_ms=20).packet_list()
    proxy = FecAudioProxy(packets, transport="udp",
                          config=FecAudioProxyConfig(fec_enabled=True))
    proxy.channel.add_member("mobile-host", address)
    print(f"sending {len(packets)} audio packets through the FEC(6,4) proxy")
    proxy.start()
    if not proxy.wait_for_completion(timeout=60.0):
        raise RuntimeError("the proxy did not finish in time")
    proxy.shutdown()

    report = report_queue.get(timeout=30.0)
    receiver.join(timeout=30.0)
    print(f"receiver got {report['datagrams']} datagrams "
          f"({report['bytes']} bytes) carrying "
          f"{report['sequences']} media packets")
    expected = len(packets)
    if report["sequences"] != expected:
        raise SystemExit(
            f"expected {expected} media packets, got {report['sequences']}")
    print(f"all {expected} media packets delivered across two processes — "
          "the proxy is deployable")


if __name__ == "__main__":
    main()
