#!/usr/bin/env python3
"""Boundary-aware filter insertion on a GOP video stream.

The paper requires that a video FEC filter be inserted "at a 'frame
boundary' in the stream" so that its protection starts with an I frame
rather than in the middle of a group of pictures.  This example streams a
synthetic IBBPBBPBB video through a proxy, inserts an FEC encoder twice —
once immediately and once with the GOP-boundary hold — and shows where each
insertion landed.

Run it with ``python examples/video_frame_boundary.py``.
"""

import time

import _path  # noqa: F401

from repro.fec import FecPacket, FecPacketError, unpad_block
from repro.filters import FecEncoderFilter
from repro.media import FRAME_TYPE_NAMES, MediaPacket, VideoSource
from repro.proxies import VideoProxy


def first_fec_frame(delivered):
    """(frame type name, sequence) of the first FEC-protected video frame."""
    for raw in delivered:
        try:
            fec = FecPacket.unpack(raw)
        except FecPacketError:
            continue
        payload = unpad_block(fec.payload) if fec.is_data else (
            fec.payload if fec.is_uncoded else None)
        if payload is None:
            continue
        media = MediaPacket.unpack(payload)
        return FRAME_TYPE_NAMES[media.marker], media.sequence
    return None, None


def run(aligned: bool):
    video = VideoSource(duration=4.0, seed=7)
    delivered = []
    proxy = VideoProxy(video, delivered.append, pacing_s=0.002)
    proxy.start()
    time.sleep(0.05)   # let a few GOPs flow unprotected
    if aligned:
        proxy.insert_fec_at_gop_boundary(k=3, n=4)
    else:
        proxy.control.add(FecEncoderFilter(k=3, n=4, name="video-fec"), position=0)
    proxy.wait_for_completion(timeout=60.0)
    proxy.shutdown()
    return first_fec_frame(delivered)


def main() -> None:
    video = VideoSource(duration=4.0, seed=7)
    pattern = "".join(FRAME_TYPE_NAMES[video.pattern.frame_type_at(i)]
                      for i in range(video.pattern.length))
    print(f"video stream: {video.total_frames} frames at "
          f"{video.pattern.frames_per_second} fps, GOP pattern {pattern}")
    print()

    frame_type, sequence = run(aligned=False)
    print(f"immediate insertion      -> FEC starts at frame {sequence} "
          f"(type {frame_type}): usually mid-GOP")
    frame_type, sequence = run(aligned=True)
    print(f"GOP-boundary insertion   -> FEC starts at frame {sequence} "
          f"(type {frame_type}): always the I frame that opens a GOP")
    print()
    print("the boundary hold lets the ControlThread splice the new filter in "
          "exactly where the stream format allows it")


if __name__ == "__main__":
    main()
