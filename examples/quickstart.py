#!/usr/bin/env python3
"""Quickstart: compose, reconfigure and manage a proxy filter chain.

This walks through the core API in five minutes:

1. build a "null proxy" (two EndPoints joined by a ControlThread),
2. insert a filter into the *running* stream (nothing is lost),
3. add, reorder and remove more filters,
4. upload a brand-new filter type from source code at run time, and
5. inspect everything through the ControlManager, the way the paper's
   management GUI would.

Run it with ``python examples/quickstart.py``.
"""

import time

import _path  # noqa: F401  (makes ``repro`` importable from a checkout)

from repro.core import (
    CollectorSink,
    ControlManager,
    FilterSpec,
    FilterRegistry,
    IterableSource,
    Proxy,
)
from repro.filters import ByteCounterFilter, PassthroughFilter, UppercaseFilter


def main() -> None:
    # ------------------------------------------------------------------ 1
    # A data source (here: a generator of text records, paced so the stream
    # stays alive long enough for us to reconfigure it) and a sink.
    records = (f"record {i:04d} from the wired network | ".encode()
               for i in range(4000))
    source = IterableSource(records, pacing_s=0.001, name="wired-in")
    sink = CollectorSink(name="wireless-out")

    # A Proxy is a context manager: leaving the block shuts every stream
    # down (shutdown is idempotent, so an explicit call is also fine).
    # ``engine=`` picks the execution runtime — "threaded" (default) or
    # "event" for high-stream-count proxies; REPRO_ENGINE overrides.
    with Proxy("quickstart-proxy") as proxy:
        stream = proxy.add_stream(source, sink, name="demo")
        print(f"null proxy is running on the {proxy.engine.name!r} engine:",
              stream.filter_names() or "[no filters]")

        # -------------------------------------------------------------- 2
        # Insert a filter while data is flowing.  The ControlThread pauses
        # the upstream detachable stream, waits for in-flight bytes to
        # drain, re-splices, and resumes — no byte is lost or reordered.
        time.sleep(0.2)
        stream.add(UppercaseFilter(name="shout"))
        print("after inserting a filter:", stream.filter_names())

        # -------------------------------------------------------------- 3
        # Chains compose freely on the live stream: add more filters,
        # reorder them, and remove them again — the endpoints never notice.
        meter = ByteCounterFilter(name="meter")
        stream.add(meter, position=0)
        stream.add(PassthroughFilter(name="noop"))
        print("three filters:", stream.filter_names())
        stream.reorder(["shout", "meter", "noop"])
        print("reordered:", stream.filter_names())
        stream.remove("noop")
        print("after removing one:", stream.filter_names())

        # -------------------------------------------------------------- 4
        # Third-party code can be uploaded into the running proxy — the
        # Python analogue of the paper's serialized-filter upload.
        registry = FilterRegistry()
        manager = ControlManager()
        manager.register_proxy("edge", proxy, registry=registry)
        manager.upload_filters("edge", "thirdparty", '''
class Redactor(Filter):
    "Masks digits, e.g. before data crosses an untrusted wireless segment."
    type_name = "redactor"

    def transform(self, chunk):
        return bytes(ord("#") if 48 <= b <= 57 else b for b in chunk)
''')
        manager.insert_filter("edge", FilterSpec("redactor", name="redact"),
                              stream="demo")

        # -------------------------------------------------------------- 5
        print()
        print(manager.render_state())
        print()

        stream.wait_for_completion(timeout=60.0)
        data = sink.data()
        manager.close()

    print(f"delivered {len(data)} bytes "
          f"({meter.total_bytes} of them metered by the 'meter' filter)")
    print("first 60 bytes :", data[:60].decode(errors="replace"))
    print("last 60 bytes  :", data[-60:].decode(errors="replace"))
    print("(early records are lowercase with digits; late records are "
          "uppercase and redacted — the chain changed while the stream ran)")


if __name__ == "__main__":
    main()
