#!/usr/bin/env python3
"""Pavilion-style collaborative web browsing with a wireless participant.

Three people share a browsing session (the paper's Figure 1):

* a workstation user who starts as the session leader,
* a wired laptop user who later requests and receives the floor, and
* a palmtop user on the wireless LAN whose copy of every page travels
  through a RAPIDware proxy (compressed for the wireless segment).

Run it with ``python examples/collaborative_browsing.py``.
"""

import _path  # noqa: F401

from repro.pavilion import CollaborativeSession, build_demo_site
from repro.proxies import DeviceDescriptor


def main() -> None:
    store = build_demo_site(page_count=8, images_per_page=2, seed=2001)
    session = CollaborativeSession(store=store)
    try:
        session.join("alice-workstation")
        session.join("bob-laptop")
        session.join("carol-palmtop", device=DeviceDescriptor.palmtop(),
                     wireless=True, distance_m=18.0)
        print("participants:", ", ".join(session.participants()))
        print("session leader:", session.leader)
        print()

        pages = [url for url in store.urls() if url.endswith(".html")]

        # The leader drives the session: every page she loads is multicast.
        for url in pages[:3]:
            resource = session.browse("alice-workstation", url)
            print(f"alice loads {url} ({resource.size} bytes) -> multicast to all")

        # Bob asks for the floor; Alice grants it; Bob continues browsing.
        session.request_floor("bob-laptop")
        session.grant_floor()
        print()
        print("floor granted; new leader:", session.leader)
        for url in pages[3:5]:
            resource = session.browse("bob-laptop", url)
            print(f"bob loads {url} ({resource.size} bytes)")

        print()
        print("per-participant delivery summary:")
        for name, summary in sorted(session.delivery_summary().items()):
            print(f"  {name:20} pages={summary['pages']:2}  "
                  f"bytes={summary['bytes']:7}  over-air={summary['over_air_bytes']:7}")
        print()
        original = session.wired_bytes_delivered
        over_air = session.wlan.access_point.bytes_sent
        print(f"content bytes multicast on the wired LAN : {original}")
        print(f"bytes transmitted on the wireless LAN    : {over_air} "
              f"({100 * session.wireless_compression_ratio():.0f}% of original — "
              "the proxy compresses the wireless segment)")
        print("leadership history:", " -> ".join(session.leadership.leader_changes()))
    finally:
        session.shutdown()


if __name__ == "__main__":
    main()
